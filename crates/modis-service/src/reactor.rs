//! Non-blocking TCP reactors for the line protocol.
//!
//! The seed front-end was a thread-per-connection blocking loop: one OS
//! thread per client, blocked in `read(2)` between requests, with `RUN`
//! executing searches *on the connection thread*. That shape cannot serve
//! many concurrent clients — threads pile up, shutdown depends on a
//! throwaway connection unblocking `accept(2)`, and a slow search stalls
//! its connection entirely.
//!
//! This module replaces it with a pool of reactors:
//!
//! * **O(ready) sweeps** — the listener, the wakeup channel and every
//!   accepted stream are registered with a [`Poller`](crate::poller) (a
//!   zero-dependency `epoll(7)` wrapper; see [`crate::poller`] for the
//!   fallbacks), so a sweep touches only the connections the kernel
//!   reports ready — flat in the number of idle connections. Sockets run
//!   in [`set_nonblocking`](std::net::TcpStream::set_nonblocking) mode;
//!   interest is kept minimal (read interest is dropped under
//!   backpressure, write interest exists only while bytes are owed), so
//!   level-triggered readiness never spins.
//! * **N reactors, one accept socket** — [`ReactorConfig::reactors`]
//!   threads (default `min(4, cores)`) each own a dup of the listening
//!   socket; the kernel hands each new connection to whichever reactor
//!   accepts it first, and the connection is pinned to that reactor for
//!   its whole life. Per-reactor instruments carry a `reactor="<n>"`
//!   label.
//! * **Per-connection state machines** — each `Connection` owns an
//!   incremental read buffer (lines may arrive fragmented across many
//!   reads), an incremental write buffer (responses are flushed as the
//!   socket accepts them), and an ordered queue of `Slot`s: one slot per
//!   received request, resolved strictly in request order.
//! * **Request pipelining** — a client may enqueue any number of requests
//!   without waiting for responses; the reactor parses every complete
//!   line it has, queues one slot each, and answers them in order.
//!   Slow responses (a `RUN` drain, a `WAIT` on unfinished jobs) hold
//!   *their* position in the queue without blocking the reactor, other
//!   connections, or the parsing of later requests.
//! * **Wakeup channel** — a connected loopback socket pair per reactor.
//!   The scheduler worker ([`Service::spawn_worker`]), the drain executor
//!   and [`Service::shutdown`] write a byte to the [`Wakeup`] handles
//!   whenever something a waiting reactor may care about happens (a job
//!   finished, a drain completed, shutdown was requested); the receiving
//!   end is registered with the poller, so the wait returns immediately.
//!   Idling is a single poller wait with the [`ReactorConfig::idle_park`]
//!   timeout — the old two-phase nap/park spin is gone, because readiness
//!   itself now interrupts the wait.
//! * **Off-thread slow verbs** — `RUN` hands the queue drain to the
//!   `Executor` thread and answers `OK <n>` when it completes, and
//!   `SNAPSHOT` persists the cache there too, so the reactors keep
//!   serving every other connection while searches run and snapshots
//!   hit the disk.
//!
//! Shutdown is deterministic: [`Daemon::stop`](crate::Daemon::stop) sets
//! the stop flag and notifies every reactor's wakeup channel; each
//! reactor wakes (it never blocks anywhere else), flushes a final `ERR`
//! to every open connection, drops its listener dup and exits — no
//! throwaway connection, no reliance on a future client arriving.

use std::collections::{HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use modis_core::telemetry::{Counter, Gauge, Histogram};

use crate::net::{dispatch, done_line, Request};
use crate::poller::{self, Interest, Poller};
use crate::service::{JobState, Service, Ticket};

/// Poller token of the wakeup receiver.
const TOKEN_WAKEUP: usize = 0;
/// Poller token of the listening socket.
const TOKEN_LISTENER: usize = 1;
/// Poller tokens at and above this are connection slots (`token -
/// TOKEN_BASE` indexes the slab).
const TOKEN_BASE: usize = 2;

/// Tuning knobs of the reactor loop. The defaults suit tests, examples and
/// the benches; none of them change protocol semantics.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Longest accepted request line in bytes (terminator excluded). A
    /// longer line is answered with a protocol error and discarded up to
    /// its terminating newline; the connection stays usable.
    pub max_line_len: usize,
    /// Reactor threads sharing the accept socket (clamped to at least 1).
    /// Each accepted connection is pinned to the reactor that accepted it
    /// for its whole life; per-reactor instruments are labeled
    /// `reactor="<n>"`. Defaults to `min(4, available cores)`.
    pub reactors: usize,
    /// Backstop timeout of one poller wait. Readiness (new connections,
    /// request bytes, drained sockets) and wakeup-channel notifications
    /// (job completions, drains, shutdown) interrupt the wait immediately;
    /// the timeout only bounds how stale the stop-flag re-check can get,
    /// so it costs a handful of idle sweeps per second.
    pub idle_park: Duration,
    /// Pending-response high watermark per connection, in bytes. While a
    /// connection's write buffer sits above this, the reactor stops
    /// *reading* from it (natural pipelining backpressure: a client that
    /// never drains responses cannot buffer unbounded requests).
    pub write_high_watermark: usize,
    /// Maximum unresolved pipeline slots per connection. While a
    /// connection's queue is at this depth — e.g. requests piling up
    /// behind a pending `WAIT` — the reactor stops reading from it, so
    /// per-connection memory stays bounded by
    /// `max_pipelined × max_line_len` even when the head response is
    /// slow.
    pub max_pipelined: usize,
    /// Upper bound on bytes read from one connection per sweep, so a
    /// firehose client cannot monopolise a sweep.
    pub max_read_per_sweep: usize,
    /// Largest accepted `SHIP` binary payload, in bytes. A frame declaring
    /// more is answered with a protocol error and its payload bytes are
    /// discarded as they arrive (never buffered), so the connection stays
    /// usable and per-connection memory stays bounded.
    pub max_ship_bytes: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_line_len: 4096,
            reactors: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(4),
            idle_park: Duration::from_millis(2),
            write_high_watermark: 1 << 20,
            max_pipelined: 1024,
            max_read_per_sweep: 1 << 16,
            max_ship_bytes: 1 << 26,
        }
    }
}

/// Sending half of a reactor's wakeup channel: a cloneable handle that
/// any thread may [`notify`](Wakeup::notify) to interrupt the reactor's
/// poller wait. Notifications are level-style — what matters is that at
/// least one byte is pending, so notifying an already-notified channel is
/// free and never blocks.
#[derive(Clone)]
pub struct Wakeup {
    tx: Arc<Mutex<TcpStream>>,
}

impl Wakeup {
    /// Wakes the reactor if it is waiting. Never blocks: the sender socket
    /// is non-blocking, and a full pipe already means "wakeup pending".
    pub fn notify(&self) {
        let mut tx = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        // WouldBlock ⇒ the pipe is full of unread wakeups: the reactor
        // will wake regardless. Any other error means the reactor is gone.
        let _ = tx.write(&[1u8]);
    }
}

impl std::fmt::Debug for Wakeup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Wakeup")
    }
}

/// Builds one wakeup channel: a connected loopback socket pair (the
/// workspace has no `libc`, so no `pipe(2)`; a TCP pair over `127.0.0.1`
/// provides the same self-pipe semantics through `std::net` alone).
/// Returns the cloneable sending handle and the receiving stream the
/// reactor registers with its poller; both ends are non-blocking.
pub(crate) fn wakeup_pair() -> io::Result<(Wakeup, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let local = tx.local_addr()?;
    // Guard against a stray foreign connection racing our connect.
    let rx = loop {
        let (rx, peer) = listener.accept()?;
        if peer == local {
            break rx;
        }
    };
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    // The receiver is non-blocking too: the poller reports when wakeup
    // bytes are pending, and the drain stops at the first WouldBlock.
    rx.set_nonblocking(true)?;
    Ok((
        Wakeup {
            tx: Arc::new(Mutex::new(tx)),
        },
        rx,
    ))
}

/// Drains every pending byte from a wakeup receiver. Wakeups are
/// level-style — one pending byte means "look around" — so the drain
/// swallows everything buffered in one go.
///
/// `Interrupted` (EINTR) is retried, exactly like every other read path
/// in the reactor: a signal landing mid-drain must not abandon buffered
/// wakeup bytes, or a reactor that re-parks immediately afterwards would
/// wake again for stale bytes (and, before the poller rewrite, could
/// sleep out its full park timeout with work already pending).
pub(crate) fn drain_wakeup(rx: &mut impl Read) {
    let mut buf = [0u8; 64];
    loop {
        match rx.read(&mut buf) {
            // The sender vanished: both ends are owned by the daemon, so
            // this also means "stop soon".
            Ok(0) => break,
            Ok(_) => {}
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            // WouldBlock/TimedOut: the channel is dry. Anything else: the
            // daemon is tearing down and the next stop-flag check exits.
            Err(_) => break,
        }
    }
}

/// A response computed off the reactor thread: the executor publishes
/// the final reply text, the reactor emits the slot once the cell fills.
type DeferredReply = Arc<OnceLock<String>>;

/// Work the reactor hands to the executor thread.
enum ExecJob {
    /// `RUN`: drain the scheduler queue, answer `OK <n>`.
    Drain(DeferredReply),
    /// `SNAPSHOT <path>`: persist the evaluation cache (a full-cache
    /// serialisation plus disk write — far too slow for the reactor
    /// thread), answer `OK <bytes>` or `ERR …`.
    Snapshot(String, DeferredReply),
    /// A pre-bound slow verb (`SNAPSHOT NAMESPACE`, `RESTORE`): run the
    /// closure, answer whatever line it returns.
    Task(crate::net::OffloadFn, DeferredReply),
}

/// The off-reactor executor: `RUN` drains and `SNAPSHOT` writes enqueue
/// here, a dedicated thread runs them and wakes every reactor with each
/// result. Serialising them on one thread keeps `RUN` semantics
/// identical to the seed (each `RUN` answers the number of runs *it*
/// executed) without ever blocking a reactor.
pub(crate) struct Executor {
    queue: Mutex<VecDeque<ExecJob>>,
    ready: Condvar,
    stop: AtomicBool,
}

impl Executor {
    pub(crate) fn new() -> Self {
        Executor {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
        }
    }

    fn submit_with(&self, job: impl FnOnce(DeferredReply) -> ExecJob) -> DeferredReply {
        let reply: DeferredReply = Arc::new(OnceLock::new());
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(job(Arc::clone(&reply)));
        self.ready.notify_one();
        reply
    }

    /// Enqueues one drain and returns the cell its reply will appear in.
    fn submit_drain(&self) -> DeferredReply {
        self.submit_with(ExecJob::Drain)
    }

    /// Enqueues one snapshot write and returns its reply cell.
    fn submit_snapshot(&self, path: String) -> DeferredReply {
        self.submit_with(|reply| ExecJob::Snapshot(path, reply))
    }

    /// Enqueues an arbitrary deferred command and returns its reply cell.
    fn submit_task(&self, task: crate::net::OffloadFn) -> DeferredReply {
        self.submit_with(|reply| ExecJob::Task(task, reply))
    }

    /// Signals the executor thread to exit once its queue is empty.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// The executor thread body: run jobs until stopped *and* empty, so
    /// every accepted `RUN`/`SNAPSHOT` still executes during shutdown.
    /// Each finished job notifies every reactor's wakeup channel — the
    /// executor cannot know which reactor pins the waiting connection.
    pub(crate) fn run(&self, service: &Service, wakeups: &[Wakeup]) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if self.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    queue = self
                        .ready
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some(job) = job else { return };
            match job {
                ExecJob::Drain(reply) => {
                    let span = service.engine().tracer().span("drain");
                    let executed = service.run_pending();
                    drop(span);
                    let _ = reply.set(format!("OK {executed}"));
                }
                ExecJob::Snapshot(path, reply) => {
                    let text = match service.snapshot_to(std::path::Path::new(&path)) {
                        Ok(bytes) => format!("OK {bytes}"),
                        Err(err) => format!("ERR {err}"),
                    };
                    let _ = reply.set(text);
                }
                ExecJob::Task(task, reply) => {
                    let _ = reply.set(task(service));
                }
            }
            for wakeup in wakeups {
                wakeup.notify();
            }
        }
    }
}

/// The verbs the reactor attributes request counters and latency to.
/// Classification is a branchy `eq_ignore_ascii_case` over the first
/// token — no allocation, no table lookup — so it is safe on the
/// pipelined hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VerbClass {
    Ping,
    List,
    Submit,
    Run,
    Poll,
    Wait,
    Stats,
    Result,
    Snapshot,
    Restore,
    Quit,
    Metrics,
    Trace,
    Explain,
    Export,
    Ship,
    Other,
}

/// Number of [`VerbClass`] variants (instrument array size).
const VERB_CLASSES: usize = 17;

impl VerbClass {
    /// The exposition label value of this class.
    fn label(self) -> &'static str {
        match self {
            VerbClass::Ping => "ping",
            VerbClass::List => "list",
            VerbClass::Submit => "submit",
            VerbClass::Run => "run",
            VerbClass::Poll => "poll",
            VerbClass::Wait => "wait",
            VerbClass::Stats => "stats",
            VerbClass::Result => "result",
            VerbClass::Snapshot => "snapshot",
            VerbClass::Restore => "restore",
            VerbClass::Quit => "quit",
            VerbClass::Metrics => "metrics",
            VerbClass::Trace => "trace",
            VerbClass::Explain => "explain",
            VerbClass::Export => "export",
            VerbClass::Ship => "ship",
            VerbClass::Other => "other",
        }
    }

    /// Every class, in instrument-array order.
    fn all() -> [VerbClass; VERB_CLASSES] {
        [
            VerbClass::Ping,
            VerbClass::List,
            VerbClass::Submit,
            VerbClass::Run,
            VerbClass::Poll,
            VerbClass::Wait,
            VerbClass::Stats,
            VerbClass::Result,
            VerbClass::Snapshot,
            VerbClass::Restore,
            VerbClass::Quit,
            VerbClass::Metrics,
            VerbClass::Trace,
            VerbClass::Explain,
            VerbClass::Export,
            VerbClass::Ship,
            VerbClass::Other,
        ]
    }

    /// Classifies a request line by its first token, skipping over an
    /// optional `CTX <hex>` trace-context prefix so a routed request is
    /// counted under its real verb rather than lumped into `other`. A
    /// bare `CTX <hex>` with nothing after it classifies as `other` and
    /// dispatches to the empty verb, which answers a clean `ERR unknown
    /// command` line.
    fn classify(line: &str) -> VerbClass {
        let mut tokens = line.split_whitespace();
        let mut verb = tokens.next().unwrap_or("");
        if verb.eq_ignore_ascii_case("CTX") {
            verb = tokens.nth(1).unwrap_or("");
        }
        for class in VerbClass::all() {
            if class != VerbClass::Other && verb.eq_ignore_ascii_case(class.label()) {
                return class;
            }
        }
        VerbClass::Other
    }
}

/// Pre-resolved instrument handles for one reactor (looked up once at
/// construction — the sweep loop only touches relaxed atomics).
///
/// The per-verb and connection-count families are shared by all reactors
/// (their wire-visible series must not change with the reactor count);
/// sweep instruments and the pinned-connection gauge carry a
/// `reactor="<n>"` label so per-thread behaviour stays observable.
struct ReactorMetrics {
    open_connections: Arc<Gauge>,
    pinned_connections: Arc<Gauge>,
    backpressure_events: Arc<Counter>,
    sweep_us: Arc<Histogram>,
    sweeps_busy: Arc<Counter>,
    sweeps_idle: Arc<Counter>,
    /// Per-verb request counter + parse-to-response latency histogram,
    /// indexed by [`VerbClass`] discriminant order.
    verb_requests: [Arc<Counter>; VERB_CLASSES],
    verb_latency: [Arc<Histogram>; VERB_CLASSES],
}

impl ReactorMetrics {
    fn new(service: &Service, reactor: usize) -> ReactorMetrics {
        let metrics = service.engine().metrics();
        let classes = VerbClass::all();
        let reactor_label = reactor.to_string();
        ReactorMetrics {
            open_connections: metrics.gauge(
                "reactor_open_connections",
                "Client connections currently held, across all reactor threads.",
            ),
            pinned_connections: metrics.gauge_with(
                "reactor_pinned_connections",
                "Client connections currently pinned to one reactor thread.",
                &[("reactor", &reactor_label)],
            ),
            backpressure_events: metrics.counter(
                "reactor_backpressure_events_total",
                "Times a connection crossed into read-backpressure (write buffer above the high watermark or pipeline at max depth).",
            ),
            sweep_us: metrics.histogram_with(
                "reactor_sweep_us",
                "Duration of one reactor sweep, microseconds. Idle sweeps are recorded too; reactor_sweeps_total splits the counts.",
                &[("reactor", &reactor_label)],
            ),
            sweeps_busy: metrics.counter_with(
                "reactor_sweeps_total",
                "Reactor sweeps, split by whether the sweep made progress.",
                &[("reactor", &reactor_label), ("kind", "busy")],
            ),
            sweeps_idle: metrics.counter_with(
                "reactor_sweeps_total",
                "Reactor sweeps, split by whether the sweep made progress.",
                &[("reactor", &reactor_label), ("kind", "idle")],
            ),
            verb_requests: std::array::from_fn(|i| {
                metrics.counter_with(
                    "reactor_requests_total",
                    "Requests dispatched by the reactor, per verb.",
                    &[("verb", classes[i].label())],
                )
            }),
            verb_latency: std::array::from_fn(|i| {
                metrics.histogram_with(
                    "reactor_request_us",
                    "Parse-to-response latency inside the reactor, per verb, microseconds. Same-sweep resolutions record 0 (sub-sweep).",
                    &[("verb", classes[i].label())],
                )
            }),
        }
    }
}

/// One response position in a connection's ordered pipeline.
///
/// A parsed request enters the queue as [`Slot::Request`] and is
/// **dispatched only when it reaches the front** — exactly the seed's
/// sequential semantics: a pipelined `POLL` behind a `RUN` observes the
/// drained queue, a `SUBMIT` behind a `WAIT` executes after the wait
/// resolves. Pipelining overlaps transport and scheduling, never
/// evaluation order.
///
/// Requests carry the timestamp of the sweep that parsed them; deferred
/// slots keep it (plus their verb class) so the latency a slow response
/// accrued across sweeps is attributed to its verb when it resolves.
/// Timestamps are amortised — one `Instant::now()` per sweep, never per
/// request.
enum Slot {
    /// A raw request line, not yet evaluated, stamped at parse time.
    Request(String, Instant),
    /// The response text is known; emit it when this slot reaches the
    /// front.
    Ready(String),
    /// A `RUN` or `SNAPSHOT` handed to the executor; resolves when its
    /// reply cell is filled.
    Deferred(DeferredReply, VerbClass, Instant),
    /// A `WAIT`: emits one `DONE <id> …` line per ticket *as each job
    /// completes* (progressive streaming), resolving once none remain.
    Wait(Vec<u64>, Instant),
    /// A completed `SHIP` binary frame: the raw shipment payload, handed
    /// to the executor (merging deserialises and hashes — too slow for
    /// the reactor thread) when it reaches the front.
    Ship(Vec<u8>, Instant),
}

/// An in-progress `SHIP` binary payload: after its header line, the next
/// `expected` raw bytes on the connection belong to this frame and bypass
/// line parsing entirely.
struct ShipFrame {
    /// Payload bytes declared by the header.
    expected: usize,
    /// Payload bytes consumed so far (buffered *or* discarded).
    received: usize,
    /// The buffered payload; stays empty for an oversized (rejected)
    /// frame, whose bytes are counted and dropped.
    payload: Vec<u8>,
    /// Whether the frame fits [`ReactorConfig::max_ship_bytes`] and will
    /// be dispatched; a rejected frame already queued its `ERR` line.
    accepted: bool,
}

/// Per-connection state machine: incremental read/write buffers plus the
/// ordered response pipeline.
struct Connection {
    stream: TcpStream,
    /// Bytes received but not yet forming a complete line.
    read_buf: Vec<u8>,
    /// Bytes owed to the client; `write_pos` marks how far flushing got.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// One slot per parsed request, answered strictly in order.
    slots: VecDeque<Slot>,
    /// An over-long line is being discarded up to its newline.
    discarding: bool,
    /// A `SHIP` header was parsed and its binary payload is still being
    /// received; while set, incoming bytes feed the frame, not the line
    /// parser.
    ship: Option<ShipFrame>,
    /// No more requests will be read (EOF or `QUIT`); flush what is owed,
    /// then drop. Pipelined requests parsed before EOF are still answered.
    closing: bool,
    /// The connection is finished and will be dropped this sweep.
    dead: bool,
    /// Whether the last sweep saw this connection in read-backpressure
    /// (edge-detects the backpressure-events counter).
    backpressured: bool,
    /// The interest currently registered with the poller for this
    /// connection's stream.
    interest: Interest,
}

impl Connection {
    fn new(stream: TcpStream) -> io::Result<Connection> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            slots: VecDeque::new(),
            discarding: false,
            ship: None,
            closing: false,
            dead: false,
            backpressured: false,
            interest: Interest::READ,
        })
    }

    fn queue_line(&mut self, text: &str) {
        self.write_buf.extend_from_slice(text.as_bytes());
        self.write_buf.push(b'\n');
    }

    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }
}

/// One reactor: owns a dup of the shared listener, its pinned
/// connections, a poller watching all of them, and the receiving end of
/// its wakeup channel; runs the O(ready) sweep until stopped.
pub(crate) struct Reactor {
    listener: TcpListener,
    service: Arc<Service>,
    executor: Arc<Executor>,
    wakeup_rx: TcpStream,
    stop: Arc<AtomicBool>,
    config: ReactorConfig,
    poller: Poller,
    /// Slab of pinned connections: slot `i` registers with poller token
    /// `TOKEN_BASE + i`, so tokens stay stable across unrelated connects
    /// and disconnects.
    conns: Vec<Option<Connection>>,
    /// Freed slab slots, reused before the slab grows.
    free_slots: Vec<usize>,
    /// Slots whose *front* slot is deferred (`RUN`/`SNAPSHOT` on the
    /// executor, or a pending `WAIT`): exactly the connections a wakeup
    /// notification may unblock, so a wakeup sweeps only these instead of
    /// every open connection.
    blocked: HashSet<usize>,
    /// Live connections pinned to this reactor.
    open: usize,
    /// Reused event buffer for poller waits.
    events: Vec<poller::Event>,
    metrics: ReactorMetrics,
}

impl Reactor {
    pub(crate) fn new(
        listener: TcpListener,
        service: Arc<Service>,
        executor: Arc<Executor>,
        wakeup_rx: TcpStream,
        stop: Arc<AtomicBool>,
        config: ReactorConfig,
        index: usize,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        wakeup_rx.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(poller::source(&wakeup_rx), TOKEN_WAKEUP, Interest::READ)?;
        poller.register(poller::source(&listener), TOKEN_LISTENER, Interest::READ)?;
        let metrics = ReactorMetrics::new(&service, index);
        Ok(Reactor {
            listener,
            service,
            executor,
            wakeup_rx,
            stop,
            config,
            poller,
            conns: Vec::new(),
            free_slots: Vec::new(),
            blocked: HashSet::new(),
            open: 0,
            events: Vec::new(),
            metrics,
        })
    }

    /// The reactor thread body: wait for readiness, sweep exactly what is
    /// ready, repeat until the stop flag is set, then close down
    /// deterministically.
    ///
    /// Every sweep's duration is recorded (idle sweeps included — the
    /// O(ready) claim is only observable if the flat idle cost shows up
    /// in `reactor_sweep_us`), and `reactor_sweeps_total` counts the
    /// busy/idle split.
    pub(crate) fn run(mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            let mut events = std::mem::take(&mut self.events);
            let _ = self.poller.wait(&mut events, Some(self.config.idle_park));
            // One clock read per sweep: every request parsed or resolved
            // this sweep shares this timestamp, so telemetry adds no
            // per-request syscalls to the pipelined hot path. Taken after
            // the wait, so a sweep measures work, not blocked time.
            let sweep_start = Instant::now();
            let mut progress = false;
            let mut woken = false;
            for event in &events {
                match event.token {
                    TOKEN_WAKEUP => woken = true,
                    TOKEN_LISTENER => progress |= self.accept_ready(),
                    token => {
                        let slot = token - TOKEN_BASE;
                        // The slot may have died (and been reaped) earlier
                        // in this same event batch; stale events are
                        // harmless to skip.
                        if self.conns.get(slot).is_some_and(Option::is_some) {
                            progress |= self.sweep_connection(slot, sweep_start);
                        }
                    }
                }
            }
            self.events = events;
            if woken {
                drain_wakeup(&mut self.wakeup_rx);
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                // A wakeup means deferred work may have finished: sweep
                // the connections whose head is deferred — and only
                // those, keeping wakeups O(blocked), not O(open).
                let blocked: Vec<usize> = self.blocked.iter().copied().collect();
                for slot in blocked {
                    if self.conns.get(slot).is_some_and(Option::is_some) {
                        progress |= self.sweep_connection(slot, sweep_start);
                    }
                }
            }
            self.metrics.sweep_us.record_duration(sweep_start.elapsed());
            if progress {
                self.metrics.sweeps_busy.inc();
            } else {
                self.metrics.sweeps_idle.inc();
            }
        }
        self.close_all();
    }

    /// Accepts every connection the listener has ready. With N reactors
    /// behind one accept socket, the kernel wakes whichever reactors are
    /// waiting; losing the race to a sibling just means `WouldBlock`.
    fn accept_ready(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    progress = true;
                    if let Ok(conn) = Connection::new(stream) {
                        self.adopt(conn);
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (aborted handshake, fd pressure):
                // skip this sweep, try again next one.
                Err(_) => break,
            }
        }
        progress
    }

    /// Pins a freshly-accepted connection to this reactor: assign a slab
    /// slot, register read interest under its token.
    fn adopt(&mut self, conn: Connection) {
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        // A connection the poller cannot watch is one this reactor cannot
        // serve: drop it (closing the socket) rather than strand it.
        if self
            .poller
            .register(
                poller::source(&conn.stream),
                TOKEN_BASE + slot,
                Interest::READ,
            )
            .is_err()
        {
            self.free_slots.push(slot);
            return;
        }
        self.conns[slot] = Some(conn);
        self.open += 1;
        self.metrics.open_connections.add(1);
        self.metrics.pinned_connections.set(self.open as i64);
    }

    /// One sweep over one connection: read what is ready, parse complete
    /// lines into slots, resolve leading slots, flush what the socket
    /// accepts, then settle its registration. Returns whether any
    /// progress was made.
    fn sweep_connection(&mut self, index: usize, now: Instant) -> bool {
        let mut progress = false;
        progress |= self.read_ready(index, now);
        progress |= self.resolve_slots(index, now);
        progress |= self.flush_ready(index);
        let conn = self.conns[index].as_mut().expect("swept slot is live");
        if conn.closing && !conn.dead && conn.slots.is_empty() && conn.pending_write() == 0 {
            let _ = conn.stream.shutdown(Shutdown::Both);
            conn.dead = true;
            progress = true;
        }
        self.settle(index);
        progress
    }

    /// Post-sweep bookkeeping for one connection: reap it if it died,
    /// otherwise re-point its poller registration at exactly what it can
    /// act on next. Read interest is dropped under backpressure (and once
    /// closing) — level-triggered readiness would otherwise spin on bytes
    /// the reactor refuses to read — and write interest exists only while
    /// response bytes are owed, because a drained socket is almost always
    /// writable.
    fn settle(&mut self, index: usize) {
        let (fd, dead) = {
            let conn = self.conns[index].as_ref().expect("settled slot is live");
            (poller::source(&conn.stream), conn.dead)
        };
        if dead {
            let _ = self.poller.deregister(fd);
            self.conns[index] = None;
            self.free_slots.push(index);
            self.blocked.remove(&index);
            self.open -= 1;
            self.metrics.open_connections.add(-1);
            self.metrics.pinned_connections.set(self.open as i64);
            return;
        }
        let conn = self.conns[index].as_mut().expect("settled slot is live");
        let backpressured = conn.pending_write() > self.config.write_high_watermark
            || conn.slots.len() >= self.config.max_pipelined;
        let want = Interest {
            read: !conn.closing && !backpressured,
            write: conn.pending_write() > 0,
        };
        if want != conn.interest && self.poller.reregister(fd, TOKEN_BASE + index, want).is_ok() {
            conn.interest = want;
        }
        if matches!(
            conn.slots.front(),
            Some(Slot::Deferred(..) | Slot::Wait(..))
        ) {
            self.blocked.insert(index);
        } else {
            self.blocked.remove(&index);
        }
    }

    /// Drains readable bytes into the connection's line buffer and parses
    /// every complete request line into a response slot.
    fn read_ready(&mut self, index: usize, now: Instant) -> bool {
        let conn = self.conns[index].as_mut().expect("read slot is live");
        if conn.closing || conn.dead {
            return false;
        }
        // Backpressure, both directions: a client that does not drain
        // responses does not get new requests parsed, and requests piling
        // up behind a slow head response (a pending WAIT/RUN) stop being
        // read once the pipeline is `max_pipelined` deep — so
        // per-connection memory stays bounded either way.
        if conn.pending_write() > self.config.write_high_watermark
            || conn.slots.len() >= self.config.max_pipelined
        {
            if !conn.backpressured {
                conn.backpressured = true;
                self.metrics.backpressure_events.inc();
            }
            return false;
        }
        conn.backpressured = false;
        let mut consumed = 0usize;
        let mut saw_eof = false;
        let mut buf = [0u8; 4096];
        while consumed < self.config.max_read_per_sweep {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    consumed += n;
                    conn.read_buf.extend_from_slice(&buf[..n]);
                    // A short read means the socket buffer is drained:
                    // stop here instead of paying a would-block read.
                    // The poller is level-triggered, so bytes that land
                    // after this moment re-report on the next wait.
                    if n < buf.len() {
                        break;
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return true;
                }
            }
        }
        let mut progress = consumed > 0 || saw_eof;
        progress |= self.parse_lines(index, now);
        if saw_eof {
            let conn = self.conns[index].as_mut().expect("read slot is live");
            // The seed's `BufRead::lines` answered a final unterminated
            // line; preserve that. (EOF inside a SHIP payload instead
            // drops the incomplete frame: the shipper died mid-upload.)
            if !conn.read_buf.is_empty() && !conn.discarding && conn.ship.is_none() {
                let line = std::mem::take(&mut conn.read_buf);
                self.handle_line(index, &line, now);
            }
            let conn = self.conns[index].as_mut().expect("read slot is live");
            conn.read_buf.clear();
            conn.closing = true;
        }
        progress
    }

    /// Extracts every complete request from the read buffer: request
    /// *lines* under the line-length cap, plus the raw binary payload of a
    /// framed `SHIP` (whose header switches the connection into a bounded
    /// payload-read state until `len` bytes arrive — those bytes bypass
    /// line parsing entirely, so an arbitrary shipment can never be
    /// misread as protocol lines). Scans with a cursor over the taken
    /// buffer and copies only the unterminated tail back — O(bytes) per
    /// sweep, not O(lines × bytes).
    fn parse_lines(&mut self, index: usize, now: Instant) -> bool {
        let mut progress = false;
        let buf = {
            let conn = self.conns[index].as_mut().expect("parsed slot is live");
            std::mem::take(&mut conn.read_buf)
        };
        let mut cursor = 0;
        loop {
            // Payload mode: the pending SHIP frame consumes raw bytes
            // ahead of any line parsing.
            let conn = self.conns[index].as_mut().expect("parsed slot is live");
            if let Some(frame) = conn.ship.as_mut() {
                let take = (frame.expected - frame.received).min(buf.len() - cursor);
                if take > 0 {
                    if frame.accepted {
                        frame.payload.extend_from_slice(&buf[cursor..cursor + take]);
                    }
                    frame.received += take;
                    cursor += take;
                    progress = true;
                }
                if frame.received < frame.expected {
                    // Frame still incomplete and the buffer is drained;
                    // later bytes continue the payload next sweep.
                    break;
                }
                let frame = conn.ship.take().expect("frame just borrowed");
                if frame.accepted {
                    conn.slots.push_back(Slot::Ship(frame.payload, now));
                    progress = true;
                }
                continue;
            }
            let Some(offset) = buf[cursor..].iter().position(|&b| b == b'\n') else {
                break;
            };
            let line = &buf[cursor..cursor + offset];
            cursor += offset + 1;
            progress = true;
            if conn.discarding {
                // Tail of an oversized line: already answered.
                conn.discarding = false;
            } else if line.len() > self.config.max_line_len {
                self.reject_oversized(index);
            } else if let Some((_namespaces, len)) = std::str::from_utf8(line)
                .ok()
                .and_then(crate::net::parse_ship_header)
            {
                let accepted = len <= self.config.max_ship_bytes;
                if !accepted {
                    // Reject up front, then count-and-drop the declared
                    // payload so the connection stays in protocol sync.
                    let reply = format!(
                        "ERR shipment too large (max {} bytes)",
                        self.config.max_ship_bytes
                    );
                    conn.slots.push_back(Slot::Ready(reply));
                }
                let conn = self.conns[index].as_mut().expect("parsed slot is live");
                conn.ship = Some(ShipFrame {
                    expected: len,
                    received: 0,
                    payload: Vec::new(),
                    accepted,
                });
            } else {
                self.handle_line(index, line, now);
            }
        }
        let conn = self.conns[index].as_mut().expect("parsed slot is live");
        if conn.ship.is_some() {
            // Mid-payload: every buffered byte was consumed by the frame.
            debug_assert_eq!(cursor, buf.len());
            return progress;
        }
        let tail = &buf[cursor..];
        if conn.discarding {
            // Still inside an oversized line: keep discarding the tail.
        } else if tail.len() > self.config.max_line_len {
            conn.discarding = true;
            self.reject_oversized(index);
            progress = true;
        } else {
            conn.read_buf.extend_from_slice(tail);
        }
        progress
    }

    fn reject_oversized(&mut self, index: usize) {
        let reply = format!("ERR line too long (max {} bytes)", self.config.max_line_len);
        let conn = self.conns[index].as_mut().expect("rejected slot is live");
        conn.slots.push_back(Slot::Ready(reply));
    }

    /// Queues one request line into the connection's pipeline. Dispatch
    /// happens later, when the slot reaches the front (see [`Slot`]).
    fn handle_line(&mut self, index: usize, raw: &[u8], now: Instant) {
        // Invalid UTF-8 cannot name a verb; lossy decoding turns it into
        // a request that answers `ERR unknown command`, never a panic.
        let line = String::from_utf8_lossy(raw).into_owned();
        let conn = self.conns[index].as_mut().expect("handled slot is live");
        conn.slots.push_back(Slot::Request(line, now));
    }

    /// Resolves leading slots into response bytes, strictly in request
    /// order: requests are dispatched as they reach the front, and a
    /// pending slot (unfinished drain or wait) blocks *this connection's*
    /// later responses — and nothing else.
    fn resolve_slots(&mut self, index: usize, now: Instant) -> bool {
        let mut progress = false;
        loop {
            let service = Arc::clone(&self.service);
            let executor = Arc::clone(&self.executor);
            let conn = self.conns[index].as_mut().expect("resolved slot is live");
            match conn.slots.front_mut() {
                Some(Slot::Request(..)) => {
                    let Some(Slot::Request(line, stamp)) = conn.slots.pop_front() else {
                        unreachable!("front_mut just matched Request");
                    };
                    progress = true;
                    // A stopped service answers nothing further (seed
                    // semantics: error the next line, then close).
                    if service.is_stopped() {
                        conn.queue_line("ERR service is shut down");
                        conn.slots.clear();
                        conn.closing = true;
                        break;
                    }
                    let class = VerbClass::classify(&line);
                    self.metrics.verb_requests[class as usize].inc();
                    match dispatch(&service, &line) {
                        Request::Immediate(text) => {
                            conn.queue_line(&text);
                            self.metrics.verb_latency[class as usize]
                                .record_duration(now.saturating_duration_since(stamp));
                        }
                        Request::CloseAfter(text) => {
                            conn.queue_line(&text);
                            self.metrics.verb_latency[class as usize]
                                .record_duration(now.saturating_duration_since(stamp));
                            // Later pipelined requests are dropped, as the
                            // seed's per-connection loop did on QUIT.
                            conn.slots.clear();
                            conn.closing = true;
                            break;
                        }
                        // Deferred verbs re-enter the queue at the front
                        // and resolve on subsequent iterations/sweeps.
                        Request::Drain => conn.slots.push_front(Slot::Deferred(
                            executor.submit_drain(),
                            class,
                            stamp,
                        )),
                        Request::Snapshot(path) => conn.slots.push_front(Slot::Deferred(
                            executor.submit_snapshot(path),
                            class,
                            stamp,
                        )),
                        Request::Offload(task) => conn.slots.push_front(Slot::Deferred(
                            executor.submit_task(task),
                            class,
                            stamp,
                        )),
                        Request::Wait(tickets) => conn.slots.push_front(Slot::Wait(tickets, stamp)),
                    }
                }
                Some(Slot::Ready(_)) => {
                    let Some(Slot::Ready(text)) = conn.slots.pop_front() else {
                        unreachable!("front_mut just matched Ready");
                    };
                    conn.queue_line(&text);
                    progress = true;
                }
                Some(Slot::Deferred(reply, ..)) => {
                    let Some(text) = reply.get() else { break };
                    let text = text.clone();
                    let Some(Slot::Deferred(_, class, stamp)) = conn.slots.pop_front() else {
                        unreachable!("front_mut just matched Deferred");
                    };
                    conn.queue_line(&text);
                    self.metrics.verb_latency[class as usize]
                        .record_duration(now.saturating_duration_since(stamp));
                    progress = true;
                }
                Some(Slot::Wait(..)) => {
                    let Some(Slot::Wait(mut remaining, stamp)) = conn.slots.pop_front() else {
                        unreachable!("front_mut just matched Wait");
                    };
                    // Emit finished tickets progressively, in completion
                    // order across sweeps (listed order within one).
                    let mut i = 0;
                    while i < remaining.len() {
                        let id = remaining[i];
                        match service.poll(Ticket(id)) {
                            Ok(JobState::Done(outcome)) => {
                                remaining.remove(i);
                                conn.queue_line(&format!("DONE {id} {}", done_line(&outcome)));
                                progress = true;
                            }
                            Ok(_) => i += 1,
                            Err(err) => {
                                remaining.remove(i);
                                conn.queue_line(&format!("ERR {err}"));
                                progress = true;
                            }
                        }
                    }
                    if remaining.is_empty() {
                        self.metrics.verb_latency[VerbClass::Wait as usize]
                            .record_duration(now.saturating_duration_since(stamp));
                        progress = true;
                    } else {
                        conn.slots.push_front(Slot::Wait(remaining, stamp));
                        break;
                    }
                }
                Some(Slot::Ship(..)) => {
                    let Some(Slot::Ship(payload, stamp)) = conn.slots.pop_front() else {
                        unreachable!("front_mut just matched Ship");
                    };
                    progress = true;
                    if service.is_stopped() {
                        conn.queue_line("ERR service is shut down");
                        conn.slots.clear();
                        conn.closing = true;
                        break;
                    }
                    self.metrics.verb_requests[VerbClass::Ship as usize].inc();
                    // Merging deserialises and re-hashes every shipped
                    // entry — executor work, like RESTORE.
                    match crate::net::ship_request(payload) {
                        Request::Offload(task) => conn.slots.push_front(Slot::Deferred(
                            executor.submit_task(task),
                            VerbClass::Ship,
                            stamp,
                        )),
                        other => {
                            let text = match other {
                                Request::Immediate(text) | Request::CloseAfter(text) => text,
                                _ => "ERR internal: SHIP dispatched to a non-reply request".into(),
                            };
                            conn.queue_line(&text);
                        }
                    }
                }
                None => break,
            }
        }
        progress
    }

    /// Writes as much of the pending response bytes as the socket accepts.
    fn flush_ready(&mut self, index: usize) -> bool {
        let conn = self.conns[index].as_mut().expect("flushed slot is live");
        if conn.dead || conn.pending_write() == 0 {
            return false;
        }
        let mut progress = false;
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    return true;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    progress = true;
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return true;
                }
            }
        }
        if conn.write_pos == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        } else if conn.write_pos > 64 * 1024 {
            // Reclaim flushed prefix of a large, partially-written buffer.
            conn.write_buf.drain(..conn.write_pos);
            conn.write_pos = 0;
        }
        progress
    }

    /// Deterministic teardown: resolve whatever is already answerable
    /// (responses whose work completed before the stop), then tell every
    /// open connection the service is going away, flush best-effort,
    /// close, drop the listener. Responses still pending at this point —
    /// a drain mid-execution, a `WAIT` on an unfinished job — are
    /// superseded by the shutdown error (the drain itself still executes
    /// to completion on the executor thread).
    fn close_all(&mut self) {
        let now = Instant::now();
        for index in 0..self.conns.len() {
            if self.conns[index].is_some() {
                self.resolve_slots(index, now);
            }
        }
        for conn in self.conns.iter_mut().flatten() {
            if conn.dead {
                continue;
            }
            if !conn.closing {
                conn.queue_line("ERR service is shut down");
            }
            let pending = conn.write_pos.min(conn.write_buf.len());
            let _ = conn.stream.write_all(&conn.write_buf[pending..]);
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        self.conns.clear();
        self.metrics.open_connections.add(-(self.open as i64));
        self.open = 0;
        self.metrics.pinned_connections.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakeup_pair_notifies_without_blocking() {
        let (wakeup, mut rx) = wakeup_pair().unwrap();
        // Dry channel: the non-blocking receiver reports WouldBlock
        // immediately instead of parking.
        let mut buf = [0u8; 8];
        let err = rx.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // Notify path: repeated notifies never block, and at least one
        // byte arrives.
        for _ in 0..10_000 {
            wakeup.notify();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match rx.read(&mut buf) {
                Ok(n) => {
                    assert!(n > 0);
                    break;
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    assert!(Instant::now() < deadline, "notify byte never arrived");
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(err) => panic!("unexpected read error: {err}"),
            }
        }
    }

    /// A wakeup receiver whose reads are interrupted by signals mid-drain:
    /// EINTR, a byte, EINTR again, then dry.
    struct InterruptedChannel {
        step: usize,
    }

    impl Read for InterruptedChannel {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.step += 1;
            match self.step {
                1 | 3 => Err(io::Error::new(io::ErrorKind::Interrupted, "signal")),
                2 => {
                    buf[0] = 1;
                    Ok(1)
                }
                _ => Err(io::Error::new(io::ErrorKind::WouldBlock, "dry")),
            }
        }
    }

    #[test]
    fn wakeup_drain_retries_interrupted_reads() {
        // Regression: the cold-park drain used to treat only
        // WouldBlock/TimedOut as benign and bailed out on EINTR, leaving
        // wakeup bytes buffered. The drain must retry through EINTR and
        // stop only when the channel is dry.
        let mut rx = InterruptedChannel { step: 0 };
        drain_wakeup(&mut rx);
        assert_eq!(
            rx.step, 4,
            "drain must retry both EINTRs, consume the byte, and end on WouldBlock"
        );
    }

    #[test]
    fn verb_classification_skips_ctx_and_survives_a_bare_prefix() {
        assert_eq!(VerbClass::classify("PING"), VerbClass::Ping);
        assert_eq!(
            VerbClass::classify("CTX 000102030405060708090a0b0c0d0e0f1011121314151617 PING"),
            VerbClass::Ping
        );
        // A bare CTX prefix with no verb after it: the empty verb
        // classifies as `other` (and dispatches to a clean `ERR unknown
        // command` line — pinned in the net/integration tests).
        assert_eq!(VerbClass::classify("CTX"), VerbClass::Other);
        assert_eq!(
            VerbClass::classify("CTX 000102030405060708090a0b0c0d0e0f1011121314151617"),
            VerbClass::Other
        );
    }

    #[test]
    fn executor_answers_queued_jobs_even_after_stop() {
        let service = Service::new(crate::ServiceConfig::default());
        let (wakeup, _rx) = wakeup_pair().unwrap();
        let executor = Arc::new(Executor::new());
        let first = executor.submit_drain();
        let second = executor.submit_drain();
        let doomed = executor.submit_snapshot("/definitely/not/a/dir/x.snap".into());
        executor.stop();
        // Queued before stop ⇒ all still answered (empty queue ⇒ 0 runs;
        // an unwritable snapshot path ⇒ a protocol error, not a panic).
        executor.run(&service, std::slice::from_ref(&wakeup));
        assert_eq!(first.get().map(String::as_str), Some("OK 0"));
        assert_eq!(second.get().map(String::as_str), Some("OK 0"));
        assert!(doomed.get().unwrap().starts_with("ERR "));
    }
}
