//! A single-threaded, non-blocking TCP reactor for the line protocol.
//!
//! The seed front-end was a thread-per-connection blocking loop: one OS
//! thread per client, blocked in `read(2)` between requests, with `RUN`
//! executing searches *on the connection thread*. That shape cannot serve
//! many concurrent clients — threads pile up, shutdown depends on a
//! throwaway connection unblocking `accept(2)`, and a slow search stalls
//! its connection entirely.
//!
//! This module replaces it with a reactor:
//!
//! * **One thread, many connections** — the listener and every accepted
//!   stream run in [`set_nonblocking`](std::net::TcpStream::set_nonblocking)
//!   mode and are driven by a timed readiness sweep (the workspace vendors
//!   no `mio`/`libc`, so readiness is discovered by attempting the
//!   syscalls and treating [`WouldBlock`](std::io::ErrorKind::WouldBlock)
//!   as "not ready"; when a sweep makes no progress the reactor parks on
//!   the wakeup socket with a short read timeout instead of spinning).
//! * **Per-connection state machines** — each `Connection` owns an
//!   incremental read buffer (lines may arrive fragmented across many
//!   reads), an incremental write buffer (responses are flushed as the
//!   socket accepts them), and an ordered queue of `Slot`s: one slot per
//!   received request, resolved strictly in request order.
//! * **Request pipelining** — a client may enqueue any number of requests
//!   without waiting for responses; the reactor parses every complete
//!   line it has, queues one slot each, and answers them in order.
//!   Slow responses (a `RUN` drain, a `WAIT` on unfinished jobs) hold
//!   *their* position in the queue without blocking the reactor, other
//!   connections, or the parsing of later requests.
//! * **Wakeup channel** — a connected loopback socket pair. The scheduler
//!   worker ([`Service::spawn_worker`]), the drain executor and
//!   [`Service::shutdown`] write a byte to the [`Wakeup`] handle whenever
//!   something a parked reactor may be waiting on happens (a job finished,
//!   a drain completed, shutdown was requested); the reactor's idle park
//!   is a timed `read` on the other end, so it reacts immediately instead
//!   of sleeping out its timeout.
//! * **Off-thread slow verbs** — `RUN` hands the queue drain to the
//!   `Executor` thread and answers `OK <n>` when it completes, and
//!   `SNAPSHOT` persists the cache there too, so the reactor keeps
//!   serving every other connection while searches run and snapshots
//!   hit the disk.
//!
//! Shutdown is deterministic: [`Daemon::stop`](crate::Daemon::stop) sets
//! the stop flag and notifies the wakeup channel; the reactor wakes (it
//! never blocks anywhere else), flushes a final `ERR` to every open
//! connection, drops the listener and exits — no throwaway connection, no
//! reliance on a future client arriving.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use modis_core::telemetry::{Counter, Gauge, Histogram};

use crate::net::{dispatch, done_line, Request};
use crate::service::{JobState, Service, Ticket};

/// Tuning knobs of the reactor loop. The defaults suit tests, examples and
/// the benches; none of them change protocol semantics.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Longest accepted request line in bytes (terminator excluded). A
    /// longer line is answered with a protocol error and discarded up to
    /// its terminating newline; the connection stays usable.
    pub max_line_len: usize,
    /// Nap between sweeps while the connection set is *recently active*
    /// (progress within the last [`ReactorConfig::spin_sweeps`] sweeps).
    /// `nanosleep`-based, so it keeps sub-100µs request latency during a
    /// conversation; the cost is a mostly-idle reactor waking a few
    /// thousand times a second — only while traffic is fresh.
    pub spin_sleep: Duration,
    /// How many progress-free sweeps the reactor spins through before
    /// falling back to the deep [`ReactorConfig::idle_park`].
    pub spin_sweeps: u32,
    /// How long a *deep-idle* sweep parks on the wakeup socket before
    /// rechecking readiness. Bounds the latency of events that bypass the
    /// wakeup channel (new connections, first bytes after a lull) — the
    /// kernel rounds this receive timeout up to its tick, so it is a
    /// coarse bound; wakeup-channel events (job completions, drains,
    /// shutdown) interrupt the park immediately.
    pub idle_park: Duration,
    /// Pending-response high watermark per connection, in bytes. While a
    /// connection's write buffer sits above this, the reactor stops
    /// *reading* from it (natural pipelining backpressure: a client that
    /// never drains responses cannot buffer unbounded requests).
    pub write_high_watermark: usize,
    /// Maximum unresolved pipeline slots per connection. While a
    /// connection's queue is at this depth — e.g. requests piling up
    /// behind a pending `WAIT` — the reactor stops reading from it, so
    /// per-connection memory stays bounded by
    /// `max_pipelined × max_line_len` even when the head response is
    /// slow.
    pub max_pipelined: usize,
    /// Upper bound on bytes read from one connection per sweep, so a
    /// firehose client cannot monopolise a sweep.
    pub max_read_per_sweep: usize,
    /// Largest accepted `SHIP` binary payload, in bytes. A frame declaring
    /// more is answered with a protocol error and its payload bytes are
    /// discarded as they arrive (never buffered), so the connection stays
    /// usable and per-connection memory stays bounded.
    pub max_ship_bytes: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_line_len: 4096,
            spin_sleep: Duration::from_micros(20),
            spin_sweeps: 256,
            idle_park: Duration::from_millis(2),
            write_high_watermark: 1 << 20,
            max_pipelined: 1024,
            max_read_per_sweep: 1 << 16,
            max_ship_bytes: 1 << 26,
        }
    }
}

/// Sending half of the reactor's wakeup channel: a cloneable handle that
/// any thread may [`notify`](Wakeup::notify) to interrupt the reactor's
/// idle park. Notifications are level-style — what matters is that at
/// least one byte is pending, so notifying an already-notified channel is
/// free and never blocks.
#[derive(Clone)]
pub struct Wakeup {
    tx: Arc<Mutex<TcpStream>>,
}

impl Wakeup {
    /// Wakes the reactor if it is parked. Never blocks: the sender socket
    /// is non-blocking, and a full pipe already means "wakeup pending".
    pub fn notify(&self) {
        let mut tx = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        // WouldBlock ⇒ the pipe is full of unread wakeups: the reactor
        // will wake regardless. Any other error means the reactor is gone.
        let _ = tx.write(&[1u8]);
    }
}

impl std::fmt::Debug for Wakeup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Wakeup")
    }
}

/// Builds the wakeup channel: a connected loopback socket pair (the
/// workspace has no `libc`, so no `pipe(2)`; a TCP pair over `127.0.0.1`
/// provides the same self-pipe semantics through `std::net` alone).
/// Returns the cloneable sending handle and the receiving stream the
/// reactor parks on.
pub(crate) fn wakeup_pair(idle_park: Duration) -> io::Result<(Wakeup, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let local = tx.local_addr()?;
    // Guard against a stray foreign connection racing our connect.
    let rx = loop {
        let (rx, peer) = listener.accept()?;
        if peer == local {
            break rx;
        }
    };
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    // The receiver stays blocking *with a read timeout*: that timed read
    // is the reactor's idle park.
    rx.set_read_timeout(Some(idle_park.max(Duration::from_micros(1))))?;
    Ok((
        Wakeup {
            tx: Arc::new(Mutex::new(tx)),
        },
        rx,
    ))
}

/// A response computed off the reactor thread: the executor publishes
/// the final reply text, the reactor emits the slot once the cell fills.
type DeferredReply = Arc<OnceLock<String>>;

/// Work the reactor hands to the executor thread.
enum ExecJob {
    /// `RUN`: drain the scheduler queue, answer `OK <n>`.
    Drain(DeferredReply),
    /// `SNAPSHOT <path>`: persist the evaluation cache (a full-cache
    /// serialisation plus disk write — far too slow for the reactor
    /// thread), answer `OK <bytes>` or `ERR …`.
    Snapshot(String, DeferredReply),
    /// A pre-bound slow verb (`SNAPSHOT NAMESPACE`, `RESTORE`): run the
    /// closure, answer whatever line it returns.
    Task(crate::net::OffloadFn, DeferredReply),
}

/// The off-reactor executor: `RUN` drains and `SNAPSHOT` writes enqueue
/// here, a dedicated thread runs them and wakes the reactor with each
/// result. Serialising them on one thread keeps `RUN` semantics
/// identical to the seed (each `RUN` answers the number of runs *it*
/// executed) without ever blocking the reactor.
pub(crate) struct Executor {
    queue: Mutex<VecDeque<ExecJob>>,
    ready: Condvar,
    stop: AtomicBool,
}

impl Executor {
    pub(crate) fn new() -> Self {
        Executor {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
        }
    }

    fn submit_with(&self, job: impl FnOnce(DeferredReply) -> ExecJob) -> DeferredReply {
        let reply: DeferredReply = Arc::new(OnceLock::new());
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(job(Arc::clone(&reply)));
        self.ready.notify_one();
        reply
    }

    /// Enqueues one drain and returns the cell its reply will appear in.
    fn submit_drain(&self) -> DeferredReply {
        self.submit_with(ExecJob::Drain)
    }

    /// Enqueues one snapshot write and returns its reply cell.
    fn submit_snapshot(&self, path: String) -> DeferredReply {
        self.submit_with(|reply| ExecJob::Snapshot(path, reply))
    }

    /// Enqueues an arbitrary deferred command and returns its reply cell.
    fn submit_task(&self, task: crate::net::OffloadFn) -> DeferredReply {
        self.submit_with(|reply| ExecJob::Task(task, reply))
    }

    /// Signals the executor thread to exit once its queue is empty.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// The executor thread body: run jobs until stopped *and* empty, so
    /// every accepted `RUN`/`SNAPSHOT` still executes during shutdown.
    pub(crate) fn run(&self, service: &Service, wakeup: &Wakeup) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if self.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    queue = self
                        .ready
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some(job) = job else { return };
            match job {
                ExecJob::Drain(reply) => {
                    let span = service.engine().tracer().span("drain");
                    let executed = service.run_pending();
                    drop(span);
                    let _ = reply.set(format!("OK {executed}"));
                }
                ExecJob::Snapshot(path, reply) => {
                    let text = match service.snapshot_to(std::path::Path::new(&path)) {
                        Ok(bytes) => format!("OK {bytes}"),
                        Err(err) => format!("ERR {err}"),
                    };
                    let _ = reply.set(text);
                }
                ExecJob::Task(task, reply) => {
                    let _ = reply.set(task(service));
                }
            }
            wakeup.notify();
        }
    }
}

/// The verbs the reactor attributes request counters and latency to.
/// Classification is a branchy `eq_ignore_ascii_case` over the first
/// token — no allocation, no table lookup — so it is safe on the
/// pipelined hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VerbClass {
    Ping,
    List,
    Submit,
    Run,
    Poll,
    Wait,
    Stats,
    Result,
    Snapshot,
    Restore,
    Quit,
    Metrics,
    Trace,
    Explain,
    Export,
    Ship,
    Other,
}

/// Number of [`VerbClass`] variants (instrument array size).
const VERB_CLASSES: usize = 17;

impl VerbClass {
    /// The exposition label value of this class.
    fn label(self) -> &'static str {
        match self {
            VerbClass::Ping => "ping",
            VerbClass::List => "list",
            VerbClass::Submit => "submit",
            VerbClass::Run => "run",
            VerbClass::Poll => "poll",
            VerbClass::Wait => "wait",
            VerbClass::Stats => "stats",
            VerbClass::Result => "result",
            VerbClass::Snapshot => "snapshot",
            VerbClass::Restore => "restore",
            VerbClass::Quit => "quit",
            VerbClass::Metrics => "metrics",
            VerbClass::Trace => "trace",
            VerbClass::Explain => "explain",
            VerbClass::Export => "export",
            VerbClass::Ship => "ship",
            VerbClass::Other => "other",
        }
    }

    /// Every class, in instrument-array order.
    fn all() -> [VerbClass; VERB_CLASSES] {
        [
            VerbClass::Ping,
            VerbClass::List,
            VerbClass::Submit,
            VerbClass::Run,
            VerbClass::Poll,
            VerbClass::Wait,
            VerbClass::Stats,
            VerbClass::Result,
            VerbClass::Snapshot,
            VerbClass::Restore,
            VerbClass::Quit,
            VerbClass::Metrics,
            VerbClass::Trace,
            VerbClass::Explain,
            VerbClass::Export,
            VerbClass::Ship,
            VerbClass::Other,
        ]
    }

    /// Classifies a request line by its first token, skipping over an
    /// optional `CTX <hex>` trace-context prefix so a routed request is
    /// counted under its real verb rather than lumped into `other`.
    fn classify(line: &str) -> VerbClass {
        let mut tokens = line.split_whitespace();
        let mut verb = tokens.next().unwrap_or("");
        if verb.eq_ignore_ascii_case("CTX") {
            verb = tokens.nth(1).unwrap_or("");
        }
        for class in VerbClass::all() {
            if class != VerbClass::Other && verb.eq_ignore_ascii_case(class.label()) {
                return class;
            }
        }
        VerbClass::Other
    }
}

/// Pre-resolved instrument handles for the reactor (looked up once at
/// construction — the sweep loop only touches relaxed atomics).
struct ReactorMetrics {
    open_connections: Arc<Gauge>,
    backpressure_events: Arc<Counter>,
    sweep_us: Arc<Histogram>,
    /// Per-verb request counter + parse-to-response latency histogram,
    /// indexed by [`VerbClass`] discriminant order.
    verb_requests: [Arc<Counter>; VERB_CLASSES],
    verb_latency: [Arc<Histogram>; VERB_CLASSES],
}

impl ReactorMetrics {
    fn new(service: &Service) -> ReactorMetrics {
        let metrics = service.engine().metrics();
        let classes = VerbClass::all();
        ReactorMetrics {
            open_connections: metrics.gauge(
                "reactor_open_connections",
                "Client connections currently held by the reactor.",
            ),
            backpressure_events: metrics.counter(
                "reactor_backpressure_events_total",
                "Times a connection crossed into read-backpressure (write buffer above the high watermark or pipeline at max depth).",
            ),
            sweep_us: metrics.histogram(
                "reactor_sweep_us",
                "Duration of one reactor sweep that made progress, microseconds.",
            ),
            verb_requests: std::array::from_fn(|i| {
                metrics.counter_with(
                    "reactor_requests_total",
                    "Requests dispatched by the reactor, per verb.",
                    &[("verb", classes[i].label())],
                )
            }),
            verb_latency: std::array::from_fn(|i| {
                metrics.histogram_with(
                    "reactor_request_us",
                    "Parse-to-response latency inside the reactor, per verb, microseconds. Same-sweep resolutions record 0 (sub-sweep).",
                    &[("verb", classes[i].label())],
                )
            }),
        }
    }
}

/// One response position in a connection's ordered pipeline.
///
/// A parsed request enters the queue as [`Slot::Request`] and is
/// **dispatched only when it reaches the front** — exactly the seed's
/// sequential semantics: a pipelined `POLL` behind a `RUN` observes the
/// drained queue, a `SUBMIT` behind a `WAIT` executes after the wait
/// resolves. Pipelining overlaps transport and scheduling, never
/// evaluation order.
///
/// Requests carry the timestamp of the sweep that parsed them; deferred
/// slots keep it (plus their verb class) so the latency a slow response
/// accrued across sweeps is attributed to its verb when it resolves.
/// Timestamps are amortised — one `Instant::now()` per sweep, never per
/// request.
enum Slot {
    /// A raw request line, not yet evaluated, stamped at parse time.
    Request(String, Instant),
    /// The response text is known; emit it when this slot reaches the
    /// front.
    Ready(String),
    /// A `RUN` or `SNAPSHOT` handed to the executor; resolves when its
    /// reply cell is filled.
    Deferred(DeferredReply, VerbClass, Instant),
    /// A `WAIT`: emits one `DONE <id> …` line per ticket *as each job
    /// completes* (progressive streaming), resolving once none remain.
    Wait(Vec<u64>, Instant),
    /// A completed `SHIP` binary frame: the raw shipment payload, handed
    /// to the executor (merging deserialises and hashes — too slow for
    /// the reactor thread) when it reaches the front.
    Ship(Vec<u8>, Instant),
}

/// An in-progress `SHIP` binary payload: after its header line, the next
/// `expected` raw bytes on the connection belong to this frame and bypass
/// line parsing entirely.
struct ShipFrame {
    /// Payload bytes declared by the header.
    expected: usize,
    /// Payload bytes consumed so far (buffered *or* discarded).
    received: usize,
    /// The buffered payload; stays empty for an oversized (rejected)
    /// frame, whose bytes are counted and dropped.
    payload: Vec<u8>,
    /// Whether the frame fits [`ReactorConfig::max_ship_bytes`] and will
    /// be dispatched; a rejected frame already queued its `ERR` line.
    accepted: bool,
}

/// Per-connection state machine: incremental read/write buffers plus the
/// ordered response pipeline.
struct Connection {
    stream: TcpStream,
    /// Bytes received but not yet forming a complete line.
    read_buf: Vec<u8>,
    /// Bytes owed to the client; `write_pos` marks how far flushing got.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// One slot per parsed request, answered strictly in order.
    slots: VecDeque<Slot>,
    /// An over-long line is being discarded up to its newline.
    discarding: bool,
    /// A `SHIP` header was parsed and its binary payload is still being
    /// received; while set, incoming bytes feed the frame, not the line
    /// parser.
    ship: Option<ShipFrame>,
    /// No more requests will be read (EOF or `QUIT`); flush what is owed,
    /// then drop. Pipelined requests parsed before EOF are still answered.
    closing: bool,
    /// The connection is finished and will be dropped this sweep.
    dead: bool,
    /// Whether the last sweep saw this connection in read-backpressure
    /// (edge-detects the backpressure-events counter).
    backpressured: bool,
}

impl Connection {
    fn new(stream: TcpStream) -> io::Result<Connection> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            slots: VecDeque::new(),
            discarding: false,
            ship: None,
            closing: false,
            dead: false,
            backpressured: false,
        })
    }

    fn queue_line(&mut self, text: &str) {
        self.write_buf.extend_from_slice(text.as_bytes());
        self.write_buf.push(b'\n');
    }

    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }
}

/// The reactor: owns the listener, the connections and the receiving end
/// of the wakeup channel, and runs the readiness sweep until stopped.
pub(crate) struct Reactor {
    listener: TcpListener,
    service: Arc<Service>,
    executor: Arc<Executor>,
    wakeup_rx: TcpStream,
    stop: Arc<AtomicBool>,
    config: ReactorConfig,
    conns: Vec<Connection>,
    metrics: ReactorMetrics,
}

impl Reactor {
    pub(crate) fn new(
        listener: TcpListener,
        service: Arc<Service>,
        executor: Arc<Executor>,
        wakeup_rx: TcpStream,
        stop: Arc<AtomicBool>,
        config: ReactorConfig,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let metrics = ReactorMetrics::new(&service);
        Ok(Reactor {
            listener,
            service,
            executor,
            wakeup_rx,
            stop,
            config,
            conns: Vec::new(),
            metrics,
        })
    }

    pub(crate) fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The reactor thread body: sweep until the stop flag is set, then
    /// close down deterministically.
    ///
    /// Idling is two-phase. While progress is fresh (a conversation is in
    /// flight) a progress-free sweep naps [`ReactorConfig::spin_sleep`],
    /// keeping request latency in the tens of microseconds. After
    /// [`ReactorConfig::spin_sweeps`] progress-free sweeps the reactor
    /// parks on the wakeup socket for up to [`ReactorConfig::idle_park`]
    /// — a coarse timed read the wakeup channel interrupts immediately,
    /// so deep idle costs a handful of syscalls per second without
    /// delaying completions or shutdown.
    pub(crate) fn run(mut self) {
        let mut idle_streak: u32 = 0;
        while !self.stop.load(Ordering::SeqCst) {
            // One clock read per sweep: every request parsed or resolved
            // this sweep shares this timestamp, so telemetry adds no
            // per-request syscalls to the pipelined hot path.
            let sweep_start = Instant::now();
            let mut progress = self.accept_ready();
            for i in 0..self.conns.len() {
                progress |= self.sweep_connection(i, sweep_start);
            }
            self.conns.retain(|c| !c.dead);
            self.metrics.open_connections.set(self.conns.len() as i64);
            if progress {
                idle_streak = 0;
                self.metrics.sweep_us.record_duration(sweep_start.elapsed());
            } else if !self.stop.load(Ordering::SeqCst) {
                idle_streak = idle_streak.saturating_add(1);
                if idle_streak < self.config.spin_sweeps {
                    std::thread::sleep(self.config.spin_sleep);
                } else {
                    self.park();
                }
            }
        }
        self.close_all();
    }

    /// Parks on the wakeup socket: returns on a wakeup byte or after the
    /// configured deep-idle timeout. This is the only place the reactor
    /// blocks.
    fn park(&mut self) {
        let mut buf = [0u8; 64];
        match self.wakeup_rx.read(&mut buf) {
            // Wakeup bytes drained (or the sender vanished: both ends are
            // owned by the daemon, so that also means "stop soon").
            Ok(_) => {}
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => {}
        }
    }

    /// Accepts every connection the listener has ready.
    fn accept_ready(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if let Ok(conn) = Connection::new(stream) {
                        self.conns.push(conn);
                        progress = true;
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (aborted handshake, fd pressure):
                // skip this sweep, try again next one.
                Err(_) => break,
            }
        }
        progress
    }

    /// One sweep over one connection: read what is ready, parse complete
    /// lines into slots, resolve leading slots, flush what the socket
    /// accepts. Returns whether any progress was made.
    fn sweep_connection(&mut self, index: usize, now: Instant) -> bool {
        let mut progress = false;
        progress |= self.read_ready(index, now);
        progress |= self.resolve_slots(index, now);
        progress |= self.flush_ready(index);
        let conn = &mut self.conns[index];
        if conn.closing && !conn.dead && conn.slots.is_empty() && conn.pending_write() == 0 {
            let _ = conn.stream.shutdown(Shutdown::Both);
            conn.dead = true;
            progress = true;
        }
        progress
    }

    /// Drains readable bytes into the connection's line buffer and parses
    /// every complete request line into a response slot.
    fn read_ready(&mut self, index: usize, now: Instant) -> bool {
        let conn = &mut self.conns[index];
        if conn.closing || conn.dead {
            return false;
        }
        // Backpressure, both directions: a client that does not drain
        // responses does not get new requests parsed, and requests piling
        // up behind a slow head response (a pending WAIT/RUN) stop being
        // read once the pipeline is `max_pipelined` deep — so
        // per-connection memory stays bounded either way.
        if conn.pending_write() > self.config.write_high_watermark
            || conn.slots.len() >= self.config.max_pipelined
        {
            if !conn.backpressured {
                conn.backpressured = true;
                self.metrics.backpressure_events.inc();
            }
            return false;
        }
        conn.backpressured = false;
        let mut consumed = 0usize;
        let mut saw_eof = false;
        let mut buf = [0u8; 4096];
        while consumed < self.config.max_read_per_sweep {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    consumed += n;
                    conn.read_buf.extend_from_slice(&buf[..n]);
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return true;
                }
            }
        }
        let mut progress = consumed > 0 || saw_eof;
        progress |= self.parse_lines(index, now);
        if saw_eof {
            let conn = &mut self.conns[index];
            // The seed's `BufRead::lines` answered a final unterminated
            // line; preserve that. (EOF inside a SHIP payload instead
            // drops the incomplete frame: the shipper died mid-upload.)
            if !conn.read_buf.is_empty() && !conn.discarding && conn.ship.is_none() {
                let line = std::mem::take(&mut conn.read_buf);
                self.handle_line(index, &line, now);
            }
            let conn = &mut self.conns[index];
            conn.read_buf.clear();
            conn.closing = true;
        }
        progress
    }

    /// Extracts every complete request from the read buffer: request
    /// *lines* under the line-length cap, plus the raw binary payload of a
    /// framed `SHIP` (whose header switches the connection into a bounded
    /// payload-read state until `len` bytes arrive — those bytes bypass
    /// line parsing entirely, so an arbitrary shipment can never be
    /// misread as protocol lines). Scans with a cursor over the taken
    /// buffer and copies only the unterminated tail back — O(bytes) per
    /// sweep, not O(lines × bytes).
    fn parse_lines(&mut self, index: usize, now: Instant) -> bool {
        let mut progress = false;
        let buf = std::mem::take(&mut self.conns[index].read_buf);
        let mut cursor = 0;
        loop {
            // Payload mode: the pending SHIP frame consumes raw bytes
            // ahead of any line parsing.
            if let Some(frame) = self.conns[index].ship.as_mut() {
                let take = (frame.expected - frame.received).min(buf.len() - cursor);
                if take > 0 {
                    if frame.accepted {
                        frame.payload.extend_from_slice(&buf[cursor..cursor + take]);
                    }
                    frame.received += take;
                    cursor += take;
                    progress = true;
                }
                if frame.received < frame.expected {
                    // Frame still incomplete and the buffer is drained;
                    // later bytes continue the payload next sweep.
                    break;
                }
                let frame = self.conns[index].ship.take().expect("frame just borrowed");
                if frame.accepted {
                    self.conns[index]
                        .slots
                        .push_back(Slot::Ship(frame.payload, now));
                    progress = true;
                }
                continue;
            }
            let Some(offset) = buf[cursor..].iter().position(|&b| b == b'\n') else {
                break;
            };
            let line = &buf[cursor..cursor + offset];
            cursor += offset + 1;
            progress = true;
            if self.conns[index].discarding {
                // Tail of an oversized line: already answered.
                self.conns[index].discarding = false;
            } else if line.len() > self.config.max_line_len {
                self.reject_oversized(index);
            } else if let Some((_namespaces, len)) = std::str::from_utf8(line)
                .ok()
                .and_then(crate::net::parse_ship_header)
            {
                let accepted = len <= self.config.max_ship_bytes;
                if !accepted {
                    // Reject up front, then count-and-drop the declared
                    // payload so the connection stays in protocol sync.
                    let reply = format!(
                        "ERR shipment too large (max {} bytes)",
                        self.config.max_ship_bytes
                    );
                    self.conns[index].slots.push_back(Slot::Ready(reply));
                }
                self.conns[index].ship = Some(ShipFrame {
                    expected: len,
                    received: 0,
                    payload: Vec::new(),
                    accepted,
                });
            } else {
                self.handle_line(index, line, now);
            }
        }
        let conn = &mut self.conns[index];
        if conn.ship.is_some() {
            // Mid-payload: every buffered byte was consumed by the frame.
            debug_assert_eq!(cursor, buf.len());
            return progress;
        }
        let tail = &buf[cursor..];
        if conn.discarding {
            // Still inside an oversized line: keep discarding the tail.
        } else if tail.len() > self.config.max_line_len {
            conn.discarding = true;
            self.reject_oversized(index);
            progress = true;
        } else {
            conn.read_buf.extend_from_slice(tail);
        }
        progress
    }

    fn reject_oversized(&mut self, index: usize) {
        let reply = format!("ERR line too long (max {} bytes)", self.config.max_line_len);
        self.conns[index].slots.push_back(Slot::Ready(reply));
    }

    /// Queues one request line into the connection's pipeline. Dispatch
    /// happens later, when the slot reaches the front (see [`Slot`]).
    fn handle_line(&mut self, index: usize, raw: &[u8], now: Instant) {
        // Invalid UTF-8 cannot name a verb; lossy decoding turns it into
        // a request that answers `ERR unknown command`, never a panic.
        let line = String::from_utf8_lossy(raw).into_owned();
        self.conns[index].slots.push_back(Slot::Request(line, now));
    }

    /// Resolves leading slots into response bytes, strictly in request
    /// order: requests are dispatched as they reach the front, and a
    /// pending slot (unfinished drain or wait) blocks *this connection's*
    /// later responses — and nothing else.
    fn resolve_slots(&mut self, index: usize, now: Instant) -> bool {
        let mut progress = false;
        loop {
            let service = Arc::clone(&self.service);
            let executor = Arc::clone(&self.executor);
            let conn = &mut self.conns[index];
            match conn.slots.front_mut() {
                Some(Slot::Request(..)) => {
                    let Some(Slot::Request(line, stamp)) = conn.slots.pop_front() else {
                        unreachable!("front_mut just matched Request");
                    };
                    progress = true;
                    // A stopped service answers nothing further (seed
                    // semantics: error the next line, then close).
                    if service.is_stopped() {
                        conn.queue_line("ERR service is shut down");
                        conn.slots.clear();
                        conn.closing = true;
                        break;
                    }
                    let class = VerbClass::classify(&line);
                    self.metrics.verb_requests[class as usize].inc();
                    match dispatch(&service, &line) {
                        Request::Immediate(text) => {
                            conn.queue_line(&text);
                            self.metrics.verb_latency[class as usize]
                                .record_duration(now.saturating_duration_since(stamp));
                        }
                        Request::CloseAfter(text) => {
                            conn.queue_line(&text);
                            self.metrics.verb_latency[class as usize]
                                .record_duration(now.saturating_duration_since(stamp));
                            // Later pipelined requests are dropped, as the
                            // seed's per-connection loop did on QUIT.
                            conn.slots.clear();
                            conn.closing = true;
                            break;
                        }
                        // Deferred verbs re-enter the queue at the front
                        // and resolve on subsequent iterations/sweeps.
                        Request::Drain => conn.slots.push_front(Slot::Deferred(
                            executor.submit_drain(),
                            class,
                            stamp,
                        )),
                        Request::Snapshot(path) => conn.slots.push_front(Slot::Deferred(
                            executor.submit_snapshot(path),
                            class,
                            stamp,
                        )),
                        Request::Offload(task) => conn.slots.push_front(Slot::Deferred(
                            executor.submit_task(task),
                            class,
                            stamp,
                        )),
                        Request::Wait(tickets) => conn.slots.push_front(Slot::Wait(tickets, stamp)),
                    }
                }
                Some(Slot::Ready(_)) => {
                    let Some(Slot::Ready(text)) = conn.slots.pop_front() else {
                        unreachable!("front_mut just matched Ready");
                    };
                    conn.queue_line(&text);
                    progress = true;
                }
                Some(Slot::Deferred(reply, ..)) => {
                    let Some(text) = reply.get() else { break };
                    let text = text.clone();
                    let Some(Slot::Deferred(_, class, stamp)) = conn.slots.pop_front() else {
                        unreachable!("front_mut just matched Deferred");
                    };
                    conn.queue_line(&text);
                    self.metrics.verb_latency[class as usize]
                        .record_duration(now.saturating_duration_since(stamp));
                    progress = true;
                }
                Some(Slot::Wait(..)) => {
                    let Some(Slot::Wait(mut remaining, stamp)) = conn.slots.pop_front() else {
                        unreachable!("front_mut just matched Wait");
                    };
                    // Emit finished tickets progressively, in completion
                    // order across sweeps (listed order within one).
                    let mut i = 0;
                    while i < remaining.len() {
                        let id = remaining[i];
                        match service.poll(Ticket(id)) {
                            Ok(JobState::Done(outcome)) => {
                                remaining.remove(i);
                                conn.queue_line(&format!("DONE {id} {}", done_line(&outcome)));
                                progress = true;
                            }
                            Ok(_) => i += 1,
                            Err(err) => {
                                remaining.remove(i);
                                conn.queue_line(&format!("ERR {err}"));
                                progress = true;
                            }
                        }
                    }
                    if remaining.is_empty() {
                        self.metrics.verb_latency[VerbClass::Wait as usize]
                            .record_duration(now.saturating_duration_since(stamp));
                        progress = true;
                    } else {
                        conn.slots.push_front(Slot::Wait(remaining, stamp));
                        break;
                    }
                }
                Some(Slot::Ship(..)) => {
                    let Some(Slot::Ship(payload, stamp)) = conn.slots.pop_front() else {
                        unreachable!("front_mut just matched Ship");
                    };
                    progress = true;
                    if service.is_stopped() {
                        conn.queue_line("ERR service is shut down");
                        conn.slots.clear();
                        conn.closing = true;
                        break;
                    }
                    self.metrics.verb_requests[VerbClass::Ship as usize].inc();
                    // Merging deserialises and re-hashes every shipped
                    // entry — executor work, like RESTORE.
                    match crate::net::ship_request(payload) {
                        Request::Offload(task) => conn.slots.push_front(Slot::Deferred(
                            executor.submit_task(task),
                            VerbClass::Ship,
                            stamp,
                        )),
                        other => {
                            let text = match other {
                                Request::Immediate(text) | Request::CloseAfter(text) => text,
                                _ => "ERR internal: SHIP dispatched to a non-reply request".into(),
                            };
                            conn.queue_line(&text);
                        }
                    }
                }
                None => break,
            }
        }
        progress
    }

    /// Writes as much of the pending response bytes as the socket accepts.
    fn flush_ready(&mut self, index: usize) -> bool {
        let conn = &mut self.conns[index];
        if conn.dead || conn.pending_write() == 0 {
            return false;
        }
        let mut progress = false;
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    return true;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    progress = true;
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return true;
                }
            }
        }
        if conn.write_pos == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        } else if conn.write_pos > 64 * 1024 {
            // Reclaim flushed prefix of a large, partially-written buffer.
            conn.write_buf.drain(..conn.write_pos);
            conn.write_pos = 0;
        }
        progress
    }

    /// Deterministic teardown: resolve whatever is already answerable
    /// (responses whose work completed before the stop), then tell every
    /// open connection the service is going away, flush best-effort,
    /// close, drop the listener. Responses still pending at this point —
    /// a drain mid-execution, a `WAIT` on an unfinished job — are
    /// superseded by the shutdown error (the drain itself still executes
    /// to completion on the executor thread).
    fn close_all(&mut self) {
        let now = Instant::now();
        for index in 0..self.conns.len() {
            self.resolve_slots(index, now);
        }
        for conn in &mut self.conns {
            if conn.dead {
                continue;
            }
            if !conn.closing {
                conn.queue_line("ERR service is shut down");
            }
            let pending = conn.write_pos.min(conn.write_buf.len());
            let _ = conn.stream.write_all(&conn.write_buf[pending..]);
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        self.conns.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakeup_pair_notifies_and_times_out() {
        let (wakeup, mut rx) = wakeup_pair(Duration::from_millis(1)).unwrap();
        // Timeout path: nothing pending.
        let mut buf = [0u8; 8];
        let err = rx.read(&mut buf).unwrap_err();
        assert!(matches!(
            err.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ));
        // Notify path: a byte arrives, repeated notifies never block.
        for _ in 0..10_000 {
            wakeup.notify();
        }
        assert!(rx.read(&mut buf).unwrap() > 0);
    }

    #[test]
    fn executor_answers_queued_jobs_even_after_stop() {
        let service = Service::new(crate::ServiceConfig::default());
        let (wakeup, _rx) = wakeup_pair(Duration::from_millis(1)).unwrap();
        let executor = Arc::new(Executor::new());
        let first = executor.submit_drain();
        let second = executor.submit_drain();
        let doomed = executor.submit_snapshot("/definitely/not/a/dir/x.snap".into());
        executor.stop();
        // Queued before stop ⇒ all still answered (empty queue ⇒ 0 runs;
        // an unwritable snapshot path ⇒ a protocol error, not a panic).
        executor.run(&service, &wakeup);
        assert_eq!(first.get().map(String::as_str), Some("OK 0"));
        assert_eq!(second.get().map(String::as_str), Some("OK 0"));
        assert!(doomed.get().unwrap().starts_with("ERR "));
    }
}
