//! A minimal line-protocol front-end over `std::net::TcpListener`, so the
//! service can be driven as a daemon from tests, examples and scripts.
//!
//! One request per line, one response line per request (ASCII, `\n`
//! terminated). Commands:
//!
//! | command            | response                                                        |
//! |--------------------|-----------------------------------------------------------------|
//! | `PING`             | `PONG`                                                          |
//! | `LIST`             | `SCENARIOS <name> <name> …`                                     |
//! | `SUBMIT <name>`    | `TICKET <id>` — enqueue a registered scenario                   |
//! | `RUN`              | `OK <n>` — drain the queue now (n runs executed)                |
//! | `POLL <id>`        | `QUEUED` / `RUNNING` / `DONE entries=… states=… shared_hits=…`  |
//! | `STATS`            | `STATS hits=… misses=… entries=… evictions=… memo_entries=…`    |
//! | `SNAPSHOT <path>`  | `OK <bytes>` — persist the evaluation cache                     |
//! | `QUIT`             | `BYE` (connection closes)                                       |
//!
//! Anything else answers `ERR …`. Registration stays in-process (substrates
//! are live objects); the wire protocol only *drives* registered scenarios.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::service::{JobState, Service, Ticket};

/// Outcome of one protocol line.
pub enum Reply {
    /// Answer the line and keep the connection open.
    Line(String),
    /// Answer the line, then close the connection.
    Close(String),
}

impl Reply {
    /// The response text.
    pub fn text(&self) -> &str {
        match self {
            Reply::Line(s) | Reply::Close(s) => s,
        }
    }
}

/// Executes one protocol line against the service.
pub fn handle_command(service: &Service, line: &str) -> Reply {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let reply = match verb.to_ascii_uppercase().as_str() {
        "PING" => "PONG".to_string(),
        "LIST" => {
            let mut out = String::from("SCENARIOS");
            for name in service.scenario_names() {
                out.push(' ');
                out.push_str(&name);
            }
            out
        }
        "SUBMIT" if !rest.is_empty() => match service.submit(rest) {
            Ok(ticket) => format!("TICKET {}", ticket.0),
            Err(err) => format!("ERR {err}"),
        },
        "RUN" => format!("OK {}", service.run_pending()),
        "POLL" => match rest.parse::<u64>() {
            Ok(id) => match service.poll(Ticket(id)) {
                Ok(JobState::Queued) => "QUEUED".to_string(),
                Ok(JobState::Running) => "RUNNING".to_string(),
                Ok(JobState::Done(outcome)) => format!(
                    "DONE entries={} states={} shared_hits={} cost={} valuations={}",
                    outcome.result.len(),
                    outcome.result.states_valuated,
                    outcome.shared_hits(),
                    outcome.valuation_cost(),
                    outcome.result.total_valuations(),
                ),
                Err(err) => format!("ERR {err}"),
            },
            Err(_) => "ERR POLL expects a numeric ticket".to_string(),
        },
        "STATS" => {
            let stats = service.cache_stats();
            let cache = service.engine().cache();
            format!(
                "STATS hits={} misses={} entries={} evictions={} memo_entries={} \
                 memo_evictions={} shards={} shard_capacity={}",
                stats.hits,
                stats.misses,
                stats.entries,
                stats.evictions,
                stats.memo_entries,
                stats.memo_evictions,
                cache.shard_count(),
                cache.per_shard_capacity(),
            )
        }
        "SNAPSHOT" if !rest.is_empty() => match service.snapshot_to(std::path::Path::new(rest)) {
            Ok(bytes) => format!("OK {bytes}"),
            Err(err) => format!("ERR {err}"),
        },
        "QUIT" => return Reply::Close("BYE".to_string()),
        _ => format!("ERR unknown command {verb:?}"),
    };
    Reply::Line(reply)
}

fn handle_connection(service: &Service, stream: TcpStream) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        // A stopped service answers nothing further: submissions could not
        // be drained any more, so close instead of half-serving.
        if service.is_stopped() {
            writeln!(writer, "ERR service is shut down")?;
            break;
        }
        match handle_command(service, &line) {
            Reply::Line(text) => writeln!(writer, "{text}")?,
            Reply::Close(text) => {
                writeln!(writer, "{text}")?;
                break;
            }
        }
    }
    Ok(())
}

/// A running TCP front-end: the bound address plus the accept-loop thread.
pub struct Daemon {
    service: Arc<Service>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections, one handler thread per client.
    pub fn bind(service: Arc<Service>, addr: &str) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let accept_service = Arc::clone(&service);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_service.is_stopped() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_service = Arc::clone(&accept_service);
                std::thread::spawn(move || {
                    let _ = handle_connection(&conn_service, stream);
                });
            }
        });
        Ok(Daemon {
            service,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop. This also
    /// calls [`Service::shutdown`]: open connections answer their next line
    /// with an error and close, further submissions (in-process included)
    /// are rejected with `ServiceError::Stopped`, and any
    /// [`Service::spawn_worker`] thread exits its loop. Read-only calls
    /// (`poll`, `cache_stats`, `snapshot_to`) remain usable in-process.
    pub fn stop(mut self) {
        self.service.shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use modis_core::config::ModisConfig;
    use modis_core::estimator::EstimatorMode;
    use modis_core::substrate::mock::MockSubstrate;
    use modis_core::substrate::Substrate;
    use modis_engine::{Algorithm, Scenario};

    use crate::service::ServiceConfig;

    fn service() -> Service {
        let service = Service::new(ServiceConfig::default());
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(6));
        let config = ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_max_states(40);
        service
            .register(
                Scenario::new("apx", substrate, Algorithm::Apx, config)
                    .with_cache_namespace("pool"),
            )
            .unwrap();
        service
    }

    #[test]
    fn command_grammar_covers_the_protocol() {
        let service = service();
        assert_eq!(handle_command(&service, "PING").text(), "PONG");
        assert_eq!(handle_command(&service, "LIST").text(), "SCENARIOS apx");
        assert_eq!(handle_command(&service, "SUBMIT apx").text(), "TICKET 1");
        assert_eq!(handle_command(&service, "POLL 1").text(), "QUEUED");
        assert_eq!(handle_command(&service, "RUN").text(), "OK 1");
        assert!(handle_command(&service, "POLL 1")
            .text()
            .starts_with("DONE entries="));
        assert!(handle_command(&service, "STATS")
            .text()
            .starts_with("STATS hits="));
        assert!(handle_command(&service, "SUBMIT ghost")
            .text()
            .starts_with("ERR "));
        assert!(handle_command(&service, "POLL zero")
            .text()
            .starts_with("ERR "));
        assert!(handle_command(&service, "POLL 99")
            .text()
            .starts_with("ERR "));
        assert!(handle_command(&service, "NONSENSE")
            .text()
            .starts_with("ERR "));
        assert!(matches!(handle_command(&service, "QUIT"), Reply::Close(_)));
        // Case-insensitive verbs, tolerant whitespace.
        assert_eq!(handle_command(&service, "  ping  ").text(), "PONG");
    }
}
