//! The TCP line-protocol front-end, served by the non-blocking reactor in
//! [`crate::reactor`].
//!
//! One request per line (ASCII, `\n` terminated); responses come back in
//! request order, so clients may **pipeline** any number of requests on
//! one connection. Commands:
//!
//! | command            | response                                                        |
//! |--------------------|-----------------------------------------------------------------|
//! | `PING`             | `PONG`                                                          |
//! | `LIST`             | `SCENARIOS <name> <name> …`                                     |
//! | `SUBMIT <name>`    | `TICKET <id>` — enqueue a registered scenario                   |
//! | `RUN`              | `OK <n>` — drain the queue (n runs executed, off-thread)        |
//! | `POLL <id>`        | `QUEUED` / `RUNNING` / `DONE entries=… states=… shared_hits=…`  |
//! | `WAIT <id> [<id>…]`| one `DONE <id> entries=…` line per ticket, streamed in          |
//! |                    | completion order as the jobs finish                             |
//! | `STATS`            | `STATS hits=… misses=… entries=… evictions=… memo_entries=…`    |
//! |                    | `… hit_rate=… uptime_s=… jobs_completed=… jobs_pending=…`       |
//! |                    | `… dominance_comparisons=… dominance_pruned=…` (kernel work     |
//! |                    | done vs avoided relative to the pairwise `n·(n−1)` bound)       |
//! | `METRICS`          | `METRICS <n>` followed by `n` Prometheus-style exposition       |
//! |                    | lines rendered from the daemon's metrics registry               |
//! | `TRACE DUMP <n>`   | `SPANS <k>` followed by `k` (≤ n) `SPAN id=… parent=… …`        |
//! |                    | lines — the most recent completed tracer spans                  |
//! | `TRACE SLOW <n>`   | `SLOW <k>` followed by `k` (≤ n) `TRACE <id> dur_us=… …`        |
//! |                    | lines — the slowest stitched traces over the service threshold  |
//! | `EXPLAIN <ticket>` | `TIMELINE <k>` followed by `k` time-ordered `EVENT trace=… …`   |
//! |                    | lines — the ticket's stitched trace (queue wait, job, engine)   |
//! | `EXPLAIN TRACE <t>`| same timeline, addressed by hex trace id (the router fan-out    |
//! |                    | form; an unindexed trace answers `TIMELINE 0`, not an error)    |
//! | `RESULT <id>`      | `RESULT <id> entries=… <entry>…` — the finished skyline,        |
//! |                    | byte-exactly encoded (f64 bit patterns, not decimal)            |
//! | `SNAPSHOT <path>`  | `OK <bytes>` — persist the evaluation cache                     |
//! | `SNAPSHOT NAMESPACE <ns>… <path>` | `OK <bytes>` — persist only the given           |
//! |                    | namespaces (a shippable rebalancing unit)                       |
//! | `RESTORE <path>`   | `OK <entries>` — merge a snapshot/shipment into the live cache  |
//! | `EXPORT <ns>…`     | `SHIPMENT <digest> <len> <hex>` — the named namespaces as       |
//! |                    | hex-encoded shipment bytes plus their content digest            |
//! | `SHIP <ns>… <len>` | `OK <entries>` — `<len>` raw shipment bytes follow the line;    |
//! |                    | merged into the live cache (wire-shipped rebalancing/replication)|
//! | `QUIT`             | `BYE` (connection closes)                                       |
//!
//! Any request line may carry an optional `CTX <48-hex-digit>` prefix — a
//! wire-encoded [`TraceContext`] stitching the request's spans into the
//! sender's distributed trace (the router injects one on every forwarded
//! verb). A malformed prefix answers `ERR …`; peers that predate the
//! prefix never see it, so the protocol stays backward-compatible.
//!
//! Anything else answers `ERR …`. Registration stays in-process (substrates
//! are live objects); the wire protocol only *drives* registered scenarios.
//! The formal grammar — framing, pipelining rules, every error line — is
//! specified in `docs/PROTOCOL.md` at the repository root.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::reactor::{wakeup_pair, Executor, Reactor, ReactorConfig, Wakeup};
use crate::service::{JobState, Service, Ticket};
use modis_core::telemetry::{SpanRecord, TraceContext};
use modis_engine::ScenarioOutcome;

/// Outcome of one protocol line.
pub enum Reply {
    /// Answer the line and keep the connection open.
    Line(String),
    /// Answer the line, then close the connection.
    Close(String),
}

impl Reply {
    /// The response text.
    pub fn text(&self) -> &str {
        match self {
            Reply::Line(s) | Reply::Close(s) => s,
        }
    }
}

/// A deferred command body: runs on the executor thread, produces the
/// response line. `SNAPSHOT NAMESPACE` and `RESTORE` ride on this — both
/// serialise or merge cache state against the disk, far too slow for the
/// reactor thread.
pub type OffloadFn = Box<dyn FnOnce(&Service) -> String + Send>;

/// How the reactor must answer one request line. Where [`handle_command`]
/// executes everything synchronously, the reactor defers the verbs whose
/// responses depend on background work.
pub enum Request {
    /// The response is known now; emit it in order.
    Immediate(String),
    /// Emit the response in order, then close the connection (`QUIT`).
    CloseAfter(String),
    /// `RUN`: drain the scheduler queue off-thread, answer `OK <n>` when
    /// the drain completes.
    Drain,
    /// `SNAPSHOT <path>`: persist the evaluation cache off-thread (a
    /// full-cache serialisation plus disk write must not stall the
    /// reactor), answer `OK <bytes>`/`ERR …` when the write completes.
    Snapshot(String),
    /// A slow verb without dedicated state (`SNAPSHOT NAMESPACE`,
    /// `RESTORE`): run the closure on the executor thread, answer its
    /// returned line.
    Offload(OffloadFn),
    /// `WAIT`: stream one `DONE <id> …` line per ticket as each job
    /// completes.
    Wait(Vec<u64>),
}

/// The key/value payload of a `DONE` response for `outcome` (shared by
/// `POLL`, which prefixes nothing, and `WAIT`, which prefixes the ticket).
pub fn done_line(outcome: &ScenarioOutcome) -> String {
    format!(
        "entries={} states={} shared_hits={} cost={} valuations={}",
        outcome.result.len(),
        outcome.result.states_valuated,
        outcome.shared_hits(),
        outcome.valuation_cost(),
        outcome.result.total_valuations(),
    )
}

/// The full finished skyline of ticket `id`, encoded byte-exactly on one
/// line: `RESULT <id> entries=<n>` followed by one token per entry —
/// `b=<bits>:<words hex>;r=<raw f64 bit patterns>;p=<perf bit patterns>;`
/// `s=<rows>x<cols>;l=<level>`. Floats travel as hex `f64::to_bits`, so
/// two skylines are byte-identical **iff** their `RESULT` payloads are
/// string-equal — the property the cluster tests assert across process
/// boundaries.
pub fn result_line(id: u64, outcome: &ScenarioOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = format!("RESULT {id} entries={}", outcome.result.len());
    for entry in &outcome.result.entries {
        out.push_str(" b=");
        let _ = write!(out, "{}:", entry.bitmap.len());
        for (i, word) in entry.bitmap.words().iter().enumerate() {
            if i > 0 {
                out.push('.');
            }
            let _ = write!(out, "{word:x}");
        }
        out.push_str(";r=");
        for (i, v) in entry.raw.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{:x}", v.to_bits());
        }
        out.push_str(";p=");
        for (i, v) in entry.perf.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{:x}", v.to_bits());
        }
        let _ = write!(
            out,
            ";s={}x{};l={}",
            entry.size.0, entry.size.1, entry.level
        );
    }
    out
}

/// Parses `SNAPSHOT NAMESPACE <ns>… <path>` arguments (everything after
/// the `NAMESPACE` keyword): at least one namespace followed by the path.
fn parse_namespace_snapshot(rest: &str) -> Option<(Vec<String>, String)> {
    let mut tokens: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
    if tokens.len() < 2 {
        return None;
    }
    let path = tokens.pop().expect("len checked above");
    Some((tokens, path))
}

/// Parses a `SHIP <ns> [<ns>…] <len>` header line: at least one namespace
/// followed by the binary payload length. Returns `None` when the line is
/// not a well-formed `SHIP` header (the reactor then treats it as an
/// ordinary — unknown — text request and never enters binary mode).
pub fn parse_ship_header(line: &str) -> Option<(Vec<String>, usize)> {
    let trimmed = line.trim();
    let (verb, rest) = trimmed.split_once(char::is_whitespace)?;
    if !verb.eq_ignore_ascii_case("SHIP") {
        return None;
    }
    let mut tokens: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
    if tokens.len() < 2 {
        return None;
    }
    let len = tokens.pop().expect("len checked above").parse().ok()?;
    Some((tokens, len))
}

/// Builds the deferred execution of a completed `SHIP` frame: the payload
/// bytes are merged into the live cache on the executor thread (same
/// wholesale guard validation as `RESTORE`), answering `OK <entries>`.
pub fn ship_request(payload: Vec<u8>) -> Request {
    Request::Offload(Box::new(move |service| {
        match service.restore_from_bytes(&payload) {
            Ok(entries) => format!("OK {entries}"),
            Err(err) => format!("ERR {err}"),
        }
    }))
}

/// Executes `EXPORT <ns>…` against the service: the named namespaces as a
/// hex-encoded in-memory shipment, prefixed with their stable content
/// digest and the decoded byte length —
/// `SHIPMENT <digest> <len> <hex>`. The digest lets a replication driver
/// skip pushing a payload its replica already holds.
fn export_reply(service: &Service, namespaces: &[String]) -> String {
    use std::fmt::Write as _;
    let digest = service.namespace_digest(namespaces);
    let bytes = service.shipment_bytes(namespaces);
    let mut out = String::with_capacity(40 + bytes.len() * 2);
    let _ = write!(out, "SHIPMENT {digest:x} {} ", bytes.len());
    for b in &bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Executes `SNAPSHOT NAMESPACE` against the service (shared by the
/// synchronous entry point and the executor offload).
fn snapshot_namespaces_reply(service: &Service, namespaces: &[String], path: &str) -> String {
    match service.snapshot_namespaces_to(namespaces, std::path::Path::new(path)) {
        Ok(bytes) => format!("OK {bytes}"),
        Err(err) => format!("ERR {err}"),
    }
}

/// Executes `RESTORE` against the service (shared like the above).
fn restore_reply(service: &Service, path: &str) -> String {
    match service.restore_from(std::path::Path::new(path)) {
        Ok(entries) => format!("OK {entries}"),
        Err(err) => format!("ERR {err}"),
    }
}

/// Resident set size of this process in bytes (`VmRSS` from
/// `/proc/self/status`), or 0 where procfs is unavailable (non-Linux).
fn process_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Open file descriptors of this process (entries of `/proc/self/fd`), or
/// 0 where procfs is unavailable (non-Linux).
fn process_open_fds() -> u64 {
    match std::fs::read_dir("/proc/self/fd") {
        Ok(entries) => entries.count() as u64,
        Err(_) => 0,
    }
}

/// Registers (first call) and refreshes the observability instruments
/// whose truth lives outside the registry: tracer span-retention
/// accounting and process vitals from `/proc/self`. Called at bind time —
/// so the gauges exist in every exposition — and again on each `METRICS`
/// scrape so the values are current.
pub fn sync_observability_metrics(service: &Service) {
    let registry = service.engine().metrics();
    let tracer = service.engine().tracer();
    let dropped = registry.counter(
        "tracer_dropped_spans_total",
        "Completed spans evicted from the tracer's retention rings (ring overflow).",
    );
    // The counter trails the tracer's monotonic drop count; top it up to
    // match rather than re-adding the full total on every scrape.
    dropped.add(tracer.dropped_spans().saturating_sub(dropped.get()));
    registry
        .gauge(
            "tracer_retained_spans",
            "Completed spans currently held in the tracer's retention rings.",
        )
        .set(tracer.retained_spans() as i64);
    registry
        .gauge(
            "process_rss_bytes",
            "Resident set size of this process in bytes (0 where /proc is unavailable).",
        )
        .set(process_rss_bytes() as i64);
    registry
        .gauge(
            "process_open_fds",
            "Open file descriptors of this process (0 where /proc is unavailable).",
        )
        .set(process_open_fds() as i64);
}

/// Renders the `METRICS` response: a `METRICS <n>` header followed by `n`
/// Prometheus-style exposition lines, all in one count-prefixed reply (the
/// framing the router's fan-in relies on — see `docs/PROTOCOL.md` §7).
fn metrics_reply(service: &Service) -> String {
    sync_observability_metrics(service);
    let lines = service.engine().metrics().render();
    let mut out = format!("METRICS {}", lines.len());
    for line in &lines {
        out.push('\n');
        out.push_str(line);
    }
    out
}

/// Renders the `TRACE DUMP <n>` response: a `SPANS <k>` header (`k ≤ n`)
/// followed by one `SPAN key=value…` line per recent completed span,
/// oldest first.
fn trace_dump_reply(service: &Service, n: usize) -> String {
    let spans = service.engine().tracer().recent(n);
    let mut out = format!("SPANS {}", spans.len());
    for span in &spans {
        out.push('\n');
        out.push_str(&format!(
            "SPAN id={} parent={} trace={:016x} thread={:x} name={} start_us={} dur_us={}",
            span.id, span.parent, span.trace, span.thread, span.name, span.start_us, span.dur_us
        ));
    }
    out
}

/// Renders one stitched-timeline line of an `EXPLAIN` response. Start
/// times are shifted by the tracer's wall anchor to absolute microseconds
/// since the Unix epoch, so timelines gathered from different processes
/// sort on one shared axis.
pub fn render_event(anchor_us: u64, span: &SpanRecord) -> String {
    format!(
        "EVENT trace={:016x} span={} parent={} name={} thread={:x} start_us={} dur_us={}",
        span.trace,
        span.id,
        span.parent,
        span.name,
        span.thread,
        anchor_us + span.start_us,
        span.dur_us
    )
}

/// Renders the stitched timeline of one trace: a `TIMELINE <k>` header
/// followed by `k` time-ordered `EVENT …` lines. An unindexed trace
/// renders `TIMELINE 0` — deliberately not an error, so the router can
/// fan `EXPLAIN TRACE` out to every shard and keep only the ones that
/// hold spans.
fn explain_reply(service: &Service, trace: u64) -> String {
    let tracer = service.engine().tracer();
    let anchor = tracer.wall_anchor_us();
    let spans = tracer.trace_spans(trace);
    let mut out = format!("TIMELINE {}", spans.len());
    for span in &spans {
        out.push('\n');
        out.push_str(&render_event(anchor, span));
    }
    out
}

/// Renders the `TRACE SLOW <n>` response: a `SLOW <k>` header (`k ≤ n`)
/// followed by one line per slow stitched trace, slowest first.
fn trace_slow_reply(service: &Service, n: usize) -> String {
    let slow = service.engine().tracer().slowest(n);
    let mut out = format!("SLOW {}", slow.len());
    for entry in &slow {
        out.push('\n');
        out.push_str(&format!(
            "TRACE {:016x} dur_us={} spans={} scenario={}",
            entry.trace, entry.dur_us, entry.spans, entry.label
        ));
    }
    out
}

/// Splits an optional `CTX <48-hex-digit>` prefix off a request line,
/// returning the decoded context (if any) and the remaining command.
/// A present-but-malformed prefix is an error *line* — never a panic,
/// whatever bytes arrive on the wire.
fn strip_ctx(line: &str) -> Result<(Option<TraceContext>, &str), String> {
    let trimmed = line.trim();
    let Some((verb, rest)) = trimmed.split_once(char::is_whitespace) else {
        if trimmed.eq_ignore_ascii_case("CTX") {
            return Err("ERR CTX expects a 48-hex-digit trace context".to_string());
        }
        return Ok((None, trimmed));
    };
    if !verb.eq_ignore_ascii_case("CTX") {
        return Ok((None, trimmed));
    }
    let rest = rest.trim_start();
    let (hex, tail) = match rest.split_once(char::is_whitespace) {
        Some((hex, tail)) => (hex, tail.trim_start()),
        None => (rest, ""),
    };
    match TraceContext::decode(hex) {
        Some(ctx) => Ok((Some(ctx), tail)),
        None => Err("ERR CTX expects a 48-hex-digit trace context".to_string()),
    }
}

/// Classifies one protocol line for the reactor, without blocking on any
/// background work. Synchronous verbs are answered inline via the same
/// code paths as [`handle_command`].
pub fn dispatch(service: &Service, line: &str) -> Request {
    let (ctx, trimmed) = match strip_ctx(line) {
        Ok(stripped) => stripped,
        Err(err) => return Request::Immediate(err),
    };
    let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (trimmed, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "RUN" => Request::Drain,
        // `SNAPSHOT NAMESPACE …` offloads with its own parse; a malformed
        // one answers immediately so nothing slow runs for a bad line.
        "SNAPSHOT"
            if rest
                .split_whitespace()
                .next()
                .is_some_and(|t| t.eq_ignore_ascii_case("NAMESPACE")) =>
        {
            let args = rest.split_once(char::is_whitespace).map_or("", |(_, r)| r);
            match parse_namespace_snapshot(args) {
                Some((namespaces, path)) => Request::Offload(Box::new(move |service| {
                    snapshot_namespaces_reply(service, &namespaces, &path)
                })),
                None => Request::Immediate(
                    "ERR SNAPSHOT NAMESPACE expects one or more namespaces then a path".into(),
                ),
            }
        }
        // Empty-path SNAPSHOT falls through to handle_command, which
        // answers the seed's `ERR unknown command` for it.
        "SNAPSHOT" if !rest.is_empty() => Request::Snapshot(rest.to_string()),
        "RESTORE" if !rest.is_empty() => {
            let path = rest.to_string();
            Request::Offload(Box::new(move |service| restore_reply(service, &path)))
        }
        // Serialising + hex-encoding a namespace export is far too slow
        // for the reactor thread — same offload rationale as `SNAPSHOT
        // NAMESPACE`.
        "EXPORT" if !rest.is_empty() => {
            let namespaces: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
            Request::Offload(Box::new(move |service| export_reply(service, &namespaces)))
        }
        "WAIT" => {
            if rest.is_empty() {
                return Request::Immediate("ERR WAIT expects one or more numeric tickets".into());
            }
            let mut tickets = Vec::new();
            for token in rest.split_whitespace() {
                match token.parse::<u64>() {
                    Ok(id) => tickets.push(id),
                    Err(_) => {
                        return Request::Immediate(
                            "ERR WAIT expects one or more numeric tickets".into(),
                        )
                    }
                }
            }
            Request::Wait(tickets)
        }
        _ => match handle_line(service, ctx, trimmed) {
            Reply::Line(text) => Request::Immediate(text),
            Reply::Close(text) => Request::CloseAfter(text),
        },
    }
}

/// Executes one protocol line against the service, synchronously.
///
/// This is the in-process entry point (tests, embedding, the baseline
/// bench server). The reactor routes `RUN` and `WAIT` through
/// [`dispatch`] instead so they cannot block the event loop; every other
/// verb lands here. A synchronous `RUN` drains the queue on the calling
/// thread; a synchronous `WAIT` is rejected (it only makes sense where
/// deferred responses exist).
pub fn handle_command(service: &Service, line: &str) -> Reply {
    match strip_ctx(line) {
        Ok((ctx, rest)) => handle_line(service, ctx, rest),
        Err(err) => Reply::Line(err),
    }
}

/// [`handle_command`] after the `CTX` prefix has been split off: `ctx` is
/// the trace context the request arrived under, if any.
fn handle_line(service: &Service, ctx: Option<TraceContext>, line: &str) -> Reply {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let reply = match verb.to_ascii_uppercase().as_str() {
        "PING" => "PONG".to_string(),
        "LIST" => {
            let mut out = String::from("SCENARIOS");
            for name in service.scenario_names() {
                out.push(' ');
                out.push_str(&name);
            }
            out
        }
        "SUBMIT" if !rest.is_empty() => {
            let submitted = match ctx {
                Some(ctx) => service.submit_traced(rest, ctx),
                None => service.submit(rest),
            };
            match submitted {
                Ok(ticket) => format!("TICKET {}", ticket.0),
                Err(err) => format!("ERR {err}"),
            }
        }
        "RUN" => format!("OK {}", service.run_pending()),
        "WAIT" => "ERR WAIT requires the reactor front-end".to_string(),
        "POLL" => match rest.parse::<u64>() {
            Ok(id) => match service.poll(Ticket(id)) {
                Ok(JobState::Queued) => "QUEUED".to_string(),
                Ok(JobState::Running) => "RUNNING".to_string(),
                Ok(JobState::Done(outcome)) => format!("DONE {}", done_line(&outcome)),
                Err(err) => format!("ERR {err}"),
            },
            Err(_) => "ERR POLL expects a numeric ticket".to_string(),
        },
        "STATS" => {
            let stats = service.cache_stats();
            let cache = service.engine().cache();
            let metrics = service.engine().metrics();
            use modis_core::dominance_index as dx;
            format!(
                "STATS hits={} misses={} entries={} evictions={} memo_entries={} \
                 memo_evictions={} shards={} shard_capacity={} hit_rate={:.4} \
                 uptime_s={} jobs_completed={} jobs_pending={} \
                 dominance_comparisons={} dominance_pruned={}",
                stats.hits,
                stats.misses,
                stats.entries,
                stats.evictions,
                stats.memo_entries,
                stats.memo_evictions,
                cache.shard_count(),
                cache.per_shard_capacity(),
                stats.hit_rate(),
                service.uptime().as_secs(),
                service.jobs_completed(),
                service.pending(),
                metrics
                    .counter(dx::COMPARISONS_TOTAL, dx::COMPARISONS_HELP)
                    .get(),
                metrics.counter(dx::PRUNED_TOTAL, dx::PRUNED_HELP).get(),
            )
        }
        "METRICS" => metrics_reply(service),
        "TRACE"
            if rest
                .split_whitespace()
                .next()
                .is_some_and(|t| t.eq_ignore_ascii_case("DUMP")) =>
        {
            let args = rest.split_once(char::is_whitespace).map_or("", |(_, r)| r);
            match args.trim().parse::<usize>() {
                Ok(n) => trace_dump_reply(service, n),
                Err(_) => "ERR TRACE DUMP expects a numeric span count".to_string(),
            }
        }
        "TRACE"
            if rest
                .split_whitespace()
                .next()
                .is_some_and(|t| t.eq_ignore_ascii_case("SLOW")) =>
        {
            let args = rest.split_once(char::is_whitespace).map_or("", |(_, r)| r);
            match args.trim().parse::<usize>() {
                Ok(n) => trace_slow_reply(service, n),
                Err(_) => "ERR TRACE SLOW expects a numeric trace count".to_string(),
            }
        }
        "EXPLAIN" => {
            let mut tokens = rest.split_whitespace();
            match tokens.next() {
                // `EXPLAIN TRACE <hex>` — the router's fan-out form,
                // addressing the trace directly (tickets are local ids).
                Some(token) if token.eq_ignore_ascii_case("TRACE") => {
                    match tokens.next().map(|hex| u64::from_str_radix(hex, 16)) {
                        Some(Ok(trace)) => explain_reply(service, trace),
                        _ => "ERR EXPLAIN TRACE expects a hex trace id".to_string(),
                    }
                }
                Some(token) => match token.parse::<u64>() {
                    Ok(id) => match service.trace_of(Ticket(id)) {
                        Some(trace) => explain_reply(service, trace),
                        None => format!("ERR unknown ticket {id}"),
                    },
                    Err(_) => "ERR EXPLAIN expects a ticket or TRACE <trace-id>".to_string(),
                },
                None => "ERR EXPLAIN expects a ticket or TRACE <trace-id>".to_string(),
            }
        }
        "RESULT" => match rest.parse::<u64>() {
            Ok(id) => match service.poll(Ticket(id)) {
                Ok(JobState::Done(outcome)) => result_line(id, &outcome),
                Ok(_) => format!("ERR ticket {id} is not finished"),
                Err(err) => format!("ERR {err}"),
            },
            Err(_) => "ERR RESULT expects a numeric ticket".to_string(),
        },
        "SNAPSHOT"
            if rest
                .split_whitespace()
                .next()
                .is_some_and(|t| t.eq_ignore_ascii_case("NAMESPACE")) =>
        {
            let args = rest.split_once(char::is_whitespace).map_or("", |(_, r)| r);
            match parse_namespace_snapshot(args) {
                Some((namespaces, path)) => snapshot_namespaces_reply(service, &namespaces, &path),
                None => "ERR SNAPSHOT NAMESPACE expects one or more namespaces then a path".into(),
            }
        }
        "SNAPSHOT" if !rest.is_empty() => match service.snapshot_to(std::path::Path::new(rest)) {
            Ok(bytes) => format!("OK {bytes}"),
            Err(err) => format!("ERR {err}"),
        },
        "RESTORE" if !rest.is_empty() => restore_reply(service, rest),
        "EXPORT" if !rest.is_empty() => {
            let namespaces: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
            export_reply(service, &namespaces)
        }
        // A SHIP header is followed by raw payload bytes, which only the
        // reactor's binary read state can frame.
        "SHIP" => "ERR SHIP requires the reactor front-end".to_string(),
        "QUIT" => return Reply::Close("BYE".to_string()),
        _ => format!("ERR unknown command {verb:?}"),
    };
    Reply::Line(reply)
}

/// The daemon's worker threads — N reactors plus the drain executor —
/// `take`n exactly once during stop.
type DaemonThreads = (Vec<JoinHandle<()>>, Option<JoinHandle<()>>);

/// A running TCP front-end: the bound address plus the reactor pool and
/// drain executor threads.
///
/// Unlike the seed's thread-per-connection daemon, a `Daemon` serves its
/// connections from a small pool of non-blocking reactor threads
/// ([`ReactorConfig::reactors`], default `min(4, cores)`) sharing one
/// accept socket (see [`crate::reactor`]): each connection is pinned to
/// the reactor that accepted it, clients may pipeline requests, `RUN`
/// drains execute on the companion executor thread, and [`Daemon::stop`]
/// tears everything down deterministically through the per-reactor
/// wakeup channels.
///
/// ```
/// use std::io::{BufRead, BufReader, Write};
/// use std::net::TcpStream;
/// use std::sync::Arc;
/// use modis_service::{Daemon, Service, ServiceConfig};
///
/// let service = Arc::new(Service::new(ServiceConfig::default()));
/// let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
///
/// let mut stream = TcpStream::connect(daemon.addr()).unwrap();
/// // Pipelined: both requests are on the wire before a response is read;
/// // responses come back in request order.
/// stream.write_all(b"PING\nLIST\n").unwrap();
/// let mut reader = BufReader::new(stream);
/// let mut reply = String::new();
/// reader.read_line(&mut reply).unwrap();
/// assert_eq!(reply, "PONG\n");
/// reply.clear();
/// reader.read_line(&mut reply).unwrap();
/// assert_eq!(reply, "SCENARIOS\n");
/// daemon.stop();
/// ```
pub struct Daemon {
    service: Arc<Service>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wakeups: Vec<Wakeup>,
    executor: Arc<Executor>,
    /// Reactor + executor join handles, taken exactly once. The mutex is
    /// what makes [`Daemon::stop`] idempotent under concurrent double-stop
    /// (e.g. an explicit `stop` racing a `Drop`, or two owners of an
    /// `Arc<Daemon>`): the winner holds the lock through the whole
    /// teardown, losers block until it finishes and then find the handles
    /// already taken.
    threads: Mutex<DaemonThreads>,
}

impl Daemon {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the reactor with default [`ReactorConfig`] tuning.
    pub fn bind(service: Arc<Service>, addr: &str) -> io::Result<Daemon> {
        Daemon::bind_with(service, addr, ReactorConfig::default())
    }

    /// Binds `addr` with explicit reactor tuning.
    pub fn bind_with(
        service: Arc<Service>,
        addr: &str,
        config: ReactorConfig,
    ) -> io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let executor = Arc::new(Executor::new());
        // N reactors behind one accept socket: each gets its own dup of
        // the listening fd (shared kernel accept queue) and its own
        // wakeup channel; the kernel spreads incoming connections over
        // whichever reactors are waiting in their pollers.
        let reactor_count = config.reactors.max(1);
        let mut wakeups = Vec::with_capacity(reactor_count);
        let mut reactors = Vec::with_capacity(reactor_count);
        for index in 0..reactor_count {
            let (wakeup, wakeup_rx) = wakeup_pair()?;
            let reactor = Reactor::new(
                listener.try_clone()?,
                Arc::clone(&service),
                Arc::clone(&executor),
                wakeup_rx,
                Arc::clone(&stop),
                config.clone(),
                index,
            )?;
            wakeups.push(wakeup);
            reactors.push(reactor);
        }

        // Register the tracer-retention and process-vitals instruments now
        // (refreshed again on every METRICS scrape): a daemon that has not
        // been scraped yet still exposes them in its first exposition.
        sync_observability_metrics(&service);

        // Registered only after every fallible step: a failed bind must
        // not leave dead notifiers on the service. Completions anywhere
        // (the drain executor, an external `spawn_worker` thread,
        // in-process `run_pending` calls) wake every parked reactor so
        // `WAIT` responses stream immediately — the service cannot know
        // which reactor pins the waiting connection. One front-end per
        // service: the first registration replaces any earlier front-end's
        // notifiers wholesale, the rest fan out alongside it.
        for (index, wakeup) in wakeups.iter().enumerate() {
            let wakeup = wakeup.clone();
            if index == 0 {
                service.set_completion_notifier(Arc::new(move || wakeup.notify()));
            } else {
                service.add_completion_notifier(Arc::new(move || wakeup.notify()));
            }
        }

        let reactor_threads: Vec<JoinHandle<()>> = reactors
            .into_iter()
            .map(|reactor| std::thread::spawn(move || reactor.run()))
            .collect();
        let executor_thread = {
            let service = Arc::clone(&service);
            let executor = Arc::clone(&executor);
            let wakeups = wakeups.clone();
            std::thread::spawn(move || executor.run(&service, &wakeups))
        };
        Ok(Daemon {
            service,
            addr,
            stop,
            wakeups,
            executor,
            threads: Mutex::new((reactor_threads, Some(executor_thread))),
        })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the front-end deterministically and joins both threads. This
    /// also calls [`Service::shutdown`]: open connections are flushed a
    /// final error line and closed, further submissions (in-process
    /// included) are rejected with `ServiceError::Stopped`, and any
    /// [`Service::spawn_worker`] thread exits its loop. Read-only calls
    /// (`poll`, `cache_stats`, `snapshot_to`) remain usable in-process.
    ///
    /// The shutdown path is the wakeup channels: the stop flag is set, a
    /// wakeup byte interrupts every reactor's poller wait, and each
    /// reactor closes its listener dup and pinned connections before
    /// exiting — no throwaway connection, no waiting for a future client.
    /// Once `stop` returns, the listening port is fully released and
    /// immediately rebindable.
    ///
    /// `stop` is **idempotent, including under concurrency**: any number
    /// of callers (say two threads sharing an `Arc<Daemon>`, or a manual
    /// stop racing `Drop`) may invoke it; the first performs the teardown
    /// while holding the internal lock, the rest block until it completes
    /// and then return with nothing left to do. Every caller observes a
    /// fully-stopped daemon when its call returns.
    pub fn stop(&self) {
        self.stop_inner();
    }

    fn stop_inner(&self) {
        let mut threads = self.threads.lock().unwrap_or_else(PoisonError::into_inner);
        if threads.0.is_empty() && threads.1.is_none() {
            return;
        }
        self.service.shutdown();
        self.stop.store(true, Ordering::SeqCst);
        self.executor.stop();
        // Notified under the lock: a racing second stopper cannot interleave
        // between the flag store and the wakeup bytes (the race that could
        // previously leave a parked reactor sleeping out its timeout).
        for wakeup in &self.wakeups {
            wakeup.notify();
        }
        for handle in threads.0.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = threads.1.take() {
            let _ = handle.join();
        }
        self.service.clear_completion_notifier();
    }
}

impl Drop for Daemon {
    /// A dropped daemon stops exactly like [`Daemon::stop`] — tests that
    /// panic mid-protocol still release their port and threads.
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use modis_core::config::ModisConfig;
    use modis_core::estimator::EstimatorMode;
    use modis_core::substrate::mock::MockSubstrate;
    use modis_core::substrate::Substrate;
    use modis_engine::{Algorithm, Scenario};

    use crate::service::ServiceConfig;

    fn service() -> Service {
        let service = Service::new(ServiceConfig::default());
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(6));
        let config = ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_max_states(40);
        service
            .register(
                Scenario::new("apx", substrate, Algorithm::Apx, config)
                    .with_cache_namespace("pool"),
            )
            .unwrap();
        service
    }

    #[test]
    fn command_grammar_covers_the_protocol() {
        let service = service();
        assert_eq!(handle_command(&service, "PING").text(), "PONG");
        assert_eq!(handle_command(&service, "LIST").text(), "SCENARIOS apx");
        assert_eq!(handle_command(&service, "SUBMIT apx").text(), "TICKET 1");
        assert_eq!(handle_command(&service, "POLL 1").text(), "QUEUED");
        assert_eq!(handle_command(&service, "RUN").text(), "OK 1");
        assert!(handle_command(&service, "POLL 1")
            .text()
            .starts_with("DONE entries="));
        let stats_reply = handle_command(&service, "STATS");
        let stats_line = stats_reply.text();
        assert!(stats_line.starts_with("STATS hits="));
        // The dominance kernel counters ride on the same line so the
        // skyline win is observable per shard and cluster-aggregated.
        assert!(stats_line.contains(" dominance_comparisons="));
        assert!(stats_line.contains(" dominance_pruned="));
        assert!(handle_command(&service, "SUBMIT ghost")
            .text()
            .starts_with("ERR "));
        assert!(handle_command(&service, "POLL zero")
            .text()
            .starts_with("ERR "));
        assert!(handle_command(&service, "POLL 99")
            .text()
            .starts_with("ERR "));
        assert!(handle_command(&service, "NONSENSE")
            .text()
            .starts_with("ERR "));
        assert!(matches!(handle_command(&service, "QUIT"), Reply::Close(_)));
        // Case-insensitive verbs, tolerant whitespace.
        assert_eq!(handle_command(&service, "  ping  ").text(), "PONG");
    }

    #[test]
    fn metrics_and_trace_verbs_render_counted_multiline_replies() {
        let service = service();
        assert_eq!(handle_command(&service, "SUBMIT apx").text(), "TICKET 1");
        assert_eq!(handle_command(&service, "RUN").text(), "OK 1");

        let reply = handle_command(&service, "METRICS").text().to_string();
        let mut lines = reply.lines();
        let header = lines.next().expect("header");
        let count: usize = header
            .strip_prefix("METRICS ")
            .expect("METRICS header")
            .parse()
            .expect("numeric count");
        assert_eq!(lines.count(), count, "body must match the header count");
        assert!(reply.contains("service_jobs_completed_total 1"), "{reply}");
        assert!(
            reply.contains("engine_paid_valuations_total{namespace=\"pool\"}"),
            "{reply}"
        );

        let dump = handle_command(&service, "TRACE DUMP 16").text().to_string();
        let mut lines = dump.lines();
        let header = lines.next().expect("header");
        let count: usize = header
            .strip_prefix("SPANS ")
            .expect("SPANS header")
            .parse()
            .expect("numeric count");
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), count);
        assert!(count >= 1, "the RUN drain must have recorded spans");
        assert!(body.iter().all(|l| l.starts_with("SPAN id=")), "{dump}");
        assert!(body.iter().all(|l| l.contains(" trace=")), "{dump}");
        assert!(dump.contains("name=scenario"), "{dump}");
        assert!(
            reply.contains("tracer_retained_spans "),
            "retention gauge registered by the METRICS scrape: {reply}"
        );
        assert!(reply.contains("tracer_dropped_spans_total "), "{reply}");
        assert!(reply.contains("process_rss_bytes "), "{reply}");
        assert!(reply.contains("process_open_fds "), "{reply}");

        assert!(handle_command(&service, "TRACE DUMP many")
            .text()
            .starts_with("ERR TRACE DUMP expects"));
        assert!(handle_command(&service, "TRACE")
            .text()
            .starts_with("ERR unknown command"));

        let stats = handle_command(&service, "STATS").text().to_string();
        for key in [
            "hit_rate=",
            "uptime_s=",
            "jobs_completed=1",
            "jobs_pending=0",
        ] {
            assert!(stats.contains(key), "missing {key}: {stats}");
        }
    }

    #[test]
    fn ctx_prefix_explain_and_slow_log_cover_the_trace_protocol() {
        use std::time::Duration;
        let service =
            Service::new(ServiceConfig::default().with_slow_request_threshold(Duration::ZERO));
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(6));
        let config = ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_max_states(40);
        service
            .register(
                Scenario::new("apx", substrate, Algorithm::Apx, config)
                    .with_cache_namespace("pool"),
            )
            .unwrap();

        // A CTX prefix on any verb is transparent; malformed ones answer
        // ERR (never a panic), whatever bytes arrive.
        let ctx = service.engine().tracer().mint_context();
        assert_eq!(
            handle_command(&service, &format!("ctx {} PING", ctx.encode())).text(),
            "PONG"
        );
        for bad in ["CTX short PING", "CTX 123 PING", "CTX", "CTX zz PING"] {
            assert!(
                handle_command(&service, bad)
                    .text()
                    .starts_with("ERR CTX expects"),
                "{bad}"
            );
        }

        // A bare, *well-formed* CTX prefix with no verb after it strips
        // down to the empty verb — which must answer a clean protocol ERR
        // (not a silent fallthrough), on both the blocking and the
        // reactor dispatch paths.
        let bare = format!("CTX {}", ctx.encode());
        assert_eq!(
            handle_command(&service, &bare).text(),
            "ERR unknown command \"\""
        );
        match dispatch(&service, &bare) {
            Request::Immediate(text) => assert_eq!(text, "ERR unknown command \"\""),
            _ => panic!("bare CTX must resolve to an immediate error line"),
        }

        // A traced SUBMIT stitches queue wait, job, scenario, and
        // valuation spans under the submitter's trace id.
        assert_eq!(
            handle_command(&service, &format!("CTX {} SUBMIT apx", ctx.encode())).text(),
            "TICKET 1"
        );
        assert_eq!(handle_command(&service, "RUN").text(), "OK 1");
        let timeline = handle_command(&service, "EXPLAIN 1").text().to_string();
        let mut lines = timeline.lines();
        let count: usize = lines
            .next()
            .and_then(|h| h.strip_prefix("TIMELINE "))
            .expect("TIMELINE header")
            .parse()
            .expect("numeric count");
        let events: Vec<&str> = lines.collect();
        assert_eq!(events.len(), count);
        let id = format!("trace={:016x}", ctx.trace_id);
        assert!(
            events
                .iter()
                .all(|e| e.starts_with("EVENT ") && e.contains(&id)),
            "{timeline}"
        );
        for name in [
            "name=queue_wait",
            "name=job",
            "name=scenario",
            "name=valuation",
        ] {
            assert!(timeline.contains(name), "missing {name}: {timeline}");
        }
        // The job span hangs directly off the wire context…
        assert!(
            events
                .iter()
                .any(|e| e.contains("name=job") && e.contains(&format!("parent={}", ctx.span_id))),
            "{timeline}"
        );
        // …and the timeline is time-ordered.
        let starts: Vec<u64> = events
            .iter()
            .map(|e| {
                e.split_whitespace()
                    .find_map(|t| t.strip_prefix("start_us="))
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "{timeline}");

        // The fan-out form addresses the same trace by hex id; an
        // unknown trace is an *empty* timeline, not an error.
        assert_eq!(
            handle_command(&service, &format!("EXPLAIN TRACE {:x}", ctx.trace_id)).text(),
            timeline
        );
        assert_eq!(
            handle_command(&service, "EXPLAIN TRACE deadbeef").text(),
            "TIMELINE 0"
        );
        assert!(handle_command(&service, "EXPLAIN TRACE zz!")
            .text()
            .starts_with("ERR EXPLAIN TRACE expects"));
        assert!(handle_command(&service, "EXPLAIN 99")
            .text()
            .starts_with("ERR unknown ticket 99"));
        assert!(handle_command(&service, "EXPLAIN nope")
            .text()
            .starts_with("ERR EXPLAIN expects"));
        assert!(handle_command(&service, "EXPLAIN")
            .text()
            .starts_with("ERR EXPLAIN expects"));

        // The zero-threshold service logged the run as slow.
        let slow = handle_command(&service, "TRACE SLOW 8").text().to_string();
        let mut lines = slow.lines();
        let count: usize = lines
            .next()
            .and_then(|h| h.strip_prefix("SLOW "))
            .expect("SLOW header")
            .parse()
            .unwrap();
        assert!(count >= 1, "{slow}");
        assert_eq!(lines.clone().count(), count);
        assert!(
            lines.all(|l| l.starts_with("TRACE ") && l.contains("scenario=")),
            "{slow}"
        );
        assert!(
            slow.contains(&format!("TRACE {:016x}", ctx.trace_id)),
            "{slow}"
        );
        assert!(handle_command(&service, "TRACE SLOW many")
            .text()
            .starts_with("ERR TRACE SLOW expects"));
    }

    #[test]
    fn namespace_snapshot_restore_and_result_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("modis_net_ns_{}.ship", std::process::id()));
        let warm = service();
        assert_eq!(handle_command(&warm, "SUBMIT apx").text(), "TICKET 1");
        // RESULT before the run finishes is an error, not a hang.
        assert!(handle_command(&warm, "RESULT 1")
            .text()
            .starts_with("ERR ticket 1 is not finished"));
        assert_eq!(handle_command(&warm, "RUN").text(), "OK 1");
        let result = handle_command(&warm, "RESULT 1").text().to_string();
        assert!(result.starts_with("RESULT 1 entries="), "{result}");
        assert!(result.contains(";r="), "{result}");
        // Byte-exact: asking again yields the identical line.
        assert_eq!(handle_command(&warm, "RESULT 1").text(), result);
        assert!(handle_command(&warm, "RESULT nope")
            .text()
            .starts_with("ERR RESULT expects"));
        assert!(handle_command(&warm, "RESULT 99")
            .text()
            .starts_with("ERR unknown ticket"));

        // Ship the namespace, merge it into a fresh service, and confirm
        // the shipped evaluations answer the same scenario warm.
        let reply = handle_command(
            &warm,
            &format!("SNAPSHOT NAMESPACE pool {}", path.display()),
        );
        assert!(reply.text().starts_with("OK "), "{}", reply.text());
        assert!(handle_command(&warm, "SNAPSHOT NAMESPACE pool")
            .text()
            .starts_with("ERR SNAPSHOT NAMESPACE expects"));

        let fresh = service();
        let reply = handle_command(&fresh, &format!("RESTORE {}", path.display()));
        assert!(reply.text().starts_with("OK "), "{}", reply.text());
        assert_eq!(handle_command(&fresh, "SUBMIT apx").text(), "TICKET 1");
        assert_eq!(handle_command(&fresh, "RUN").text(), "OK 1");
        assert_eq!(handle_command(&fresh, "RESULT 1").text(), result);
        assert!(handle_command(&fresh, "RESTORE /no/such/file.ship")
            .text()
            .starts_with("ERR "));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn export_and_ship_round_trip_without_touching_disk() {
        let warm = service();
        assert_eq!(handle_command(&warm, "SUBMIT apx").text(), "TICKET 1");
        assert_eq!(handle_command(&warm, "RUN").text(), "OK 1");
        let result = handle_command(&warm, "RESULT 1").text().to_string();

        let reply = handle_command(&warm, "EXPORT pool").text().to_string();
        let mut tokens = reply.split_whitespace();
        assert_eq!(tokens.next(), Some("SHIPMENT"));
        let digest = tokens.next().expect("digest token").to_string();
        let len: usize = tokens.next().unwrap().parse().expect("numeric length");
        let hex = tokens.next().expect("hex payload");
        assert!(tokens.next().is_none());
        assert_eq!(hex.len(), len * 2, "hex is two chars per byte");
        let payload: Vec<u8> = (0..len)
            .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).unwrap())
            .collect();
        assert!(payload.starts_with(crate::snapshot::SHIPMENT_MAGIC));

        // Merge the wire payload into a fresh service: the re-run answers
        // the byte-identical skyline, and the content digests now agree.
        let fresh = service();
        match ship_request(payload) {
            Request::Offload(f) => {
                let merged = f(&fresh);
                let n: usize = merged.strip_prefix("OK ").expect(&merged).parse().unwrap();
                assert!(n > 0, "a warm namespace ships at least one evaluation");
            }
            _ => panic!("SHIP must offload"),
        }
        let fresh_export = handle_command(&fresh, "EXPORT pool").text().to_string();
        assert_eq!(
            fresh_export.split_whitespace().nth(1),
            Some(digest.as_str()),
            "replica digest matches after the merge"
        );
        assert_eq!(handle_command(&fresh, "SUBMIT apx").text(), "TICKET 1");
        assert_eq!(handle_command(&fresh, "RUN").text(), "OK 1");
        assert_eq!(handle_command(&fresh, "RESULT 1").text(), result);

        // A corrupted payload is rejected wholesale.
        match ship_request(vec![0u8; 16]) {
            Request::Offload(f) => assert!(f(&service()).starts_with("ERR ")),
            _ => panic!("SHIP must offload"),
        }
        // The synchronous entry point cannot frame a binary payload.
        assert!(handle_command(&warm, "SHIP pool 16")
            .text()
            .starts_with("ERR SHIP requires"));
    }

    #[test]
    fn ship_headers_parse_strictly() {
        assert_eq!(
            parse_ship_header("SHIP pool 128"),
            Some((vec!["pool".to_string()], 128))
        );
        assert_eq!(
            parse_ship_header("  ship a b 0\r"),
            Some((vec!["a".to_string(), "b".to_string()], 0))
        );
        assert!(parse_ship_header("SHIP pool").is_none(), "missing length");
        assert!(parse_ship_header("SHIP 128").is_none(), "missing namespace");
        assert!(parse_ship_header("SHIP pool many").is_none());
        assert!(parse_ship_header("SHIPPER pool 1").is_none());
        assert!(parse_ship_header("SHIP").is_none());
        assert!(parse_ship_header("PING").is_none());
    }

    #[test]
    fn concurrent_double_stop_is_idempotent() {
        let service = Arc::new(service());
        let daemon = Arc::new(Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap());
        let addr = daemon.addr();
        let stoppers: Vec<_> = (0..4)
            .map(|_| {
                let daemon = Arc::clone(&daemon);
                std::thread::spawn(move || daemon.stop())
            })
            .collect();
        for stopper in stoppers {
            stopper.join().expect("no stop may panic");
        }
        assert!(service.is_stopped());
        // Every stop returned ⇒ the port is fully released and rebindable.
        let service2 = Arc::new(service_for_rebind());
        let revived = Daemon::bind(service2, &addr.to_string())
            .expect("port must be rebindable after concurrent stops");
        revived.stop();
        // Stopping an already-stopped daemon (and the later Drop) is a
        // no-op rather than a second teardown.
        revived.stop();
        daemon.stop();
    }

    fn service_for_rebind() -> Service {
        service()
    }

    #[test]
    fn dispatch_classifies_deferred_verbs() {
        let service = service();
        assert!(matches!(dispatch(&service, "RUN"), Request::Drain));
        assert!(matches!(dispatch(&service, "run "), Request::Drain));
        match dispatch(&service, "WAIT 3 1 2") {
            Request::Wait(ids) => assert_eq!(ids, vec![3, 1, 2]),
            _ => panic!("WAIT with tickets must defer"),
        }
        match dispatch(&service, "SNAPSHOT /tmp/some.snap") {
            Request::Snapshot(path) => assert_eq!(path, "/tmp/some.snap"),
            _ => panic!("SNAPSHOT with a path must defer"),
        }
        assert!(matches!(
            dispatch(&service, "SNAPSHOT NAMESPACE pool /tmp/x.ship"),
            Request::Offload(_)
        ));
        assert!(matches!(
            dispatch(&service, "snapshot namespace pool other /tmp/x.ship"),
            Request::Offload(_)
        ));
        assert!(matches!(
            dispatch(&service, "SNAPSHOT NAMESPACE onlyonearg"),
            Request::Immediate(ref s) if s.starts_with("ERR SNAPSHOT NAMESPACE expects")
        ));
        assert!(matches!(
            dispatch(&service, "RESTORE /tmp/x.ship"),
            Request::Offload(_)
        ));
        assert!(matches!(
            dispatch(&service, "RESTORE"),
            Request::Immediate(ref s) if s.starts_with("ERR unknown command")
        ));
        assert!(matches!(
            dispatch(&service, "SNAPSHOT"),
            Request::Immediate(ref s) if s.starts_with("ERR unknown command")
        ));
        assert!(matches!(
            dispatch(&service, "WAIT"),
            Request::Immediate(ref s) if s.starts_with("ERR ")
        ));
        assert!(matches!(
            dispatch(&service, "WAIT one two"),
            Request::Immediate(ref s) if s.starts_with("ERR ")
        ));
        assert!(matches!(
            dispatch(&service, "PING"),
            Request::Immediate(ref s) if s == "PONG"
        ));
        assert!(matches!(dispatch(&service, "QUIT"), Request::CloseAfter(_)));
        // The synchronous entry point rejects WAIT outright.
        assert!(handle_command(&service, "WAIT 1")
            .text()
            .starts_with("ERR "));
    }
}
