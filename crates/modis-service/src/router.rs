//! The cluster router: one TCP front-end over N shard daemons.
//!
//! A [`Router`] speaks the same line protocol as a single [`crate::Daemon`]
//! and fronts a set of shard daemons (each a reactor-served [`crate::Service`]
//! in its own process), so a client cannot tell a cluster from a single
//! daemon — same verbs, same responses, same pipelining rules:
//!
//! * **Placement with K-way replication** — every scenario maps to a cache
//!   namespace ([`ClusterSpec`]), every namespace to a *ranked owner set*
//!   of [`RouterConfig::replication`] shards by rendezvous hashing
//!   ([`ShardMap::owners_of_namespace`]): rank 0 is the primary, the rest
//!   are failover replicas. `SUBMIT` goes to the highest-ranked live
//!   owner, so one namespace's evaluations still concentrate in one
//!   process while warm copies stand by elsewhere.
//! * **Pipelining end-to-end** — a client may burst any number of
//!   requests; each is forwarded to its shard *immediately on parse*
//!   (shards work concurrently on one client's pipeline), while responses
//!   are emitted strictly in request order through an ordered queue of
//!   expectations, exactly like the reactor's response slots.
//! * **Ticket remapping** — shards issue process-local ticket ids; the
//!   router allocates cluster-wide ids and translates on every `SUBMIT`
//!   response, `POLL`/`RESULT`/`WAIT` request and streamed `DONE` line.
//!   When a primary dies, a ticket is *re-homed*: the scenario is
//!   re-submitted on the freshest live replica and the cluster id remapped
//!   in place, so the client's id keeps working across the failure.
//! * **Fan-out verbs** — `RUN` drains every live shard concurrently and
//!   sums the counts; `STATS` aggregates every shard's counters into one
//!   cluster-wide line (plus a `SHARDS` verb for per-shard telemetry);
//!   `SNAPSHOT <path>` persists every shard to `<path>.<shard>` and
//!   removes the partial per-shard files when the fan-out fails midway.
//! * **Heartbeats and circuit breakers** — a background thread `PING`s
//!   every shard each [`RouterConfig::heartbeat_interval`], feeding an
//!   EWMA liveness score and a per-shard breaker
//!   (closed → open → half-open → closed, exposed as
//!   `router_circuit_state`). Forwards retry with jittered exponential
//!   backoff while the breaker allows, and fail fast (`circuit open`)
//!   once a shard is declared dead — no request ever hangs on a corpse.
//! * **Replication shipping over the wire** — after each completed `RUN`
//!   the primaries' updated namespaces are exported (`EXPORT` → one
//!   `SHIPMENT` line) and pushed to their replicas with the binary-framed
//!   `SHIP` verb; a content digest skips unchanged pushes. Rebalancing
//!   ([`Router::join_shard`] / [`Router::leave_shard`]) uses the same
//!   wire path — no shared filesystem between shard processes required —
//!   and moves exactly the minimal replica set (a rank-by-rank rendezvous
//!   guarantee).
//! * **Transparent failover** — a request owed to a dead shard re-routes
//!   to the freshest warm replica with zero operator action: `SUBMIT`
//!   picks the next live owner, `POLL`/`RESULT`/`WAIT` re-home the ticket
//!   first. Responses served by a stand-in carry a trailing
//!   ` degraded=<shard>` marker, `STATS` appends `degraded=<shards>`, and
//!   a `METRICS` scrape annotates dead shards — degraded service is
//!   visible, never silent. [`Router::set_shard_addr`] still rewires a
//!   restarted shard and resets its breaker.
//! * **`WAIT` across shards** — the router splits the ticket list per
//!   owning shard, forwards per-shard `WAIT`s, and streams the merged
//!   `DONE` lines back in arrival order (≈ cluster-wide completion
//!   order), rewritten to cluster ids; tickets stranded by a mid-`WAIT`
//!   shard death are re-homed and the wait resumes on the replica.
//!
//! The router itself holds no evaluation state and does no search work —
//! it is a thin I/O forwarder. Its client-facing side runs on the same
//! readiness core as the daemon front-end: **one** front thread drives
//! every client connection through a [`crate::poller::Poller`] (listener,
//! wakeup channel and all clients registered; a sweep touches only ready
//! sockets), instead of the former thread-per-connection handler model.
//! Shard-side connections stay blocking with a short read timeout
//! ([`RouterConfig::poll_interval`]), polled from the same thread as the
//! expectations owed on them come due.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};

use modis_core::telemetry::{Counter, MetricsRegistry, TraceContext, Tracer};

use crate::cluster::{validate_token, ClusterSpec, ShardMap};
use crate::error::ServiceError;
use crate::poller::{self, Interest, Poller};
use crate::reactor::{drain_wakeup, wakeup_pair, Wakeup};

/// Help text of the `router_heartbeat_misses_total{shard}` counter.
const HEARTBEAT_MISS_HELP: &str = "Heartbeat probes (PING) a shard failed to answer in time.";
/// Help text of the `router_failovers_total{shard}` counter.
const FAILOVER_HELP: &str = "Requests transparently re-routed away from this shard to a replica.";
/// Help text of the `router_backoff_ms{shard}` histogram.
const BACKOFF_HELP: &str =
    "Jittered exponential-backoff delays slept before forward retries, in milliseconds.";
/// Help text of the `router_circuit_state{shard}` gauge.
const CIRCUIT_HELP: &str = "Per-shard circuit breaker state: 0 = closed (healthy), \
     1 = half-open (probing), 2 = open (declared dead).";

/// Tuning knobs of the router. Defaults suit tests and examples; none
/// change protocol semantics.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Read timeout used as the polling quantum on every connection
    /// (client and shard side): bounds how long the handler loop blocks
    /// before re-checking other work and the stop flag.
    pub poll_interval: Duration,
    /// Longest accepted client request line (reactor parity).
    pub max_line_len: usize,
    /// Maximum unresolved expectations per client connection; beyond it
    /// the router stops reading that client (pipelining backpressure).
    pub max_pipelined: usize,
    /// Connect timeout for shard connections.
    pub connect_timeout: Duration,
    /// How long a lifecycle operation (wire shipping on join/leave and
    /// replication pushes) waits for one shard reply.
    pub ship_timeout: Duration,
    /// How many ticket mappings the router retains (FIFO; 0 = unbounded).
    /// Mirrors the shard daemons' bounded completed-job retention — a
    /// ticket older than either bound answers `ERR unknown ticket`.
    pub max_tickets: usize,
    /// Replication factor K: every namespace is owned by the K
    /// highest-ranked shards of its rendezvous order (clamped to the
    /// cluster size). `1` disables replication entirely — no pushes, no
    /// stand-in serving — which is the pre-replication behaviour.
    pub replication: usize,
    /// Period of the background heartbeat thread: every shard is `PING`ed
    /// once per interval, and pending replication pushes are flushed.
    pub heartbeat_interval: Duration,
    /// Connect + read timeout of one heartbeat probe. A probe that blows
    /// this deadline counts as a miss.
    pub heartbeat_timeout: Duration,
    /// Consecutive failures (heartbeat misses or forward errors) after
    /// which a shard's circuit breaker opens and the shard is declared
    /// dead.
    pub heartbeat_misses: u32,
    /// Total send attempts per forwarded request (first try + retries),
    /// each retry preceded by a jittered exponential backoff sleep.
    pub forward_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_max: Duration,
    /// How long an open circuit stays fail-fast before one half-open
    /// trial attempt is allowed through.
    pub open_cooldown: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            // Small on purpose: every client⇄router⇄shard exchange pays up
            // to two of these quanta, so the quantum is the router's
            // latency floor. The cost is one read syscall per quantum per
            // open idle connection — cheap at router connection counts
            // (the CPU-heavy side lives in the shard daemons).
            poll_interval: Duration::from_micros(200),
            max_line_len: 4096,
            max_pipelined: 1024,
            connect_timeout: Duration::from_secs(2),
            ship_timeout: Duration::from_secs(120),
            max_tickets: 1 << 16,
            replication: 1,
            heartbeat_interval: Duration::from_millis(150),
            heartbeat_timeout: Duration::from_millis(250),
            heartbeat_misses: 3,
            forward_attempts: 3,
            backoff_base: Duration::from_millis(15),
            backoff_max: Duration::from_millis(400),
            open_cooldown: Duration::from_millis(400),
        }
    }
}

/// One shard's circuit breaker position, exposed per shard as the
/// `router_circuit_state` gauge and via [`Router::circuit_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: requests flow normally.
    Closed,
    /// Probing: one trial request is allowed through after the open
    /// cooldown; success starts closing the breaker, failure re-opens it.
    HalfOpen,
    /// Declared dead: requests fail fast without touching the socket
    /// until the cooldown elapses.
    Open,
}

impl CircuitState {
    /// The gauge encoding of the state (0 / 1 / 2).
    fn gauge(self) -> i64 {
        match self {
            CircuitState::Closed => 0,
            CircuitState::HalfOpen => 1,
            CircuitState::Open => 2,
        }
    }
}

/// EWMA weight of the newest liveness observation (1 = success, 0 =
/// failure): `live = (1 - α)·live + α·observation`.
const LIVENESS_ALPHA: f64 = 0.4;
/// Smoothed liveness at or above which a non-closed breaker closes —
/// reached after two consecutive successful probes from any depth.
const LIVENESS_CLOSE: f64 = 0.6;

/// Health book-keeping for one shard: the breaker state, the consecutive
/// miss count that opens it, and an EWMA-smoothed liveness score that
/// closes it again (two consecutive successes from any depth).
#[derive(Debug, Clone)]
struct ShardHealth {
    state: CircuitState,
    misses: u32,
    liveness: f64,
    opened_at: Option<Instant>,
}

impl Default for ShardHealth {
    fn default() -> Self {
        ShardHealth {
            state: CircuitState::Closed,
            misses: 0,
            liveness: 1.0,
            opened_at: None,
        }
    }
}

impl ShardHealth {
    /// A successful probe or forward: resets the miss streak, bumps the
    /// EWMA, and closes a non-closed breaker once liveness recovers.
    fn on_success(&mut self) {
        self.misses = 0;
        self.liveness = (1.0 - LIVENESS_ALPHA) * self.liveness + LIVENESS_ALPHA;
        if self.state != CircuitState::Closed && self.liveness >= LIVENESS_CLOSE {
            self.state = CircuitState::Closed;
            self.opened_at = None;
        }
    }

    /// A failed probe or forward: decays the EWMA; `threshold`
    /// consecutive misses open a closed breaker, and any failure of a
    /// half-open trial re-opens it immediately.
    fn on_failure(&mut self, threshold: u32) {
        self.misses = self.misses.saturating_add(1);
        self.liveness *= 1.0 - LIVENESS_ALPHA;
        match self.state {
            CircuitState::Closed if self.misses >= threshold => {
                self.state = CircuitState::Open;
                self.opened_at = Some(Instant::now());
            }
            CircuitState::HalfOpen => {
                self.state = CircuitState::Open;
                self.opened_at = Some(Instant::now());
            }
            _ => {}
        }
    }

    /// Whether a request may touch the socket right now. An open breaker
    /// transitions to half-open (and admits one trial) once `cooldown`
    /// has elapsed since it opened.
    fn allow_attempt(&mut self, cooldown: Duration) -> bool {
        match self.state {
            CircuitState::Closed | CircuitState::HalfOpen => true,
            CircuitState::Open => {
                let elapsed = self
                    .opened_at
                    .map(|at| at.elapsed())
                    .unwrap_or(Duration::MAX);
                if elapsed >= cooldown {
                    self.state = CircuitState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// A deterministic-enough jitter source: seeded from a global counter so
/// concurrent handler threads draw different streams without consulting
/// the wall clock.
fn jitter_rng() -> StdRng {
    static SEED: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    let n = SEED.fetch_add(0x9E37_79B9, Ordering::Relaxed);
    StdRng::seed_from_u64(n ^ u64::from(std::process::id()).rotate_left(32))
}

/// The sleep before retry number `attempt` (1-based): exponential from
/// [`RouterConfig::backoff_base`], capped at [`RouterConfig::backoff_max`],
/// jittered uniformly into `[cap/2, cap]` so a burst of failing handlers
/// does not hammer a recovering shard in lockstep.
fn backoff_delay(config: &RouterConfig, attempt: u32, rng: &mut StdRng) -> Duration {
    let base = config.backoff_base.max(Duration::from_micros(100));
    let shift = attempt.saturating_sub(1).min(16);
    let uncapped = base.saturating_mul(1 << shift);
    let cap = uncapped.min(config.backoff_max.max(base));
    let micros = cap.as_micros().max(2) as u64;
    Duration::from_micros(rng.gen_range(micros / 2..micros + 1))
}

/// Decodes the lowercase-hex payload of a `SHIPMENT` reply.
fn hex_decode(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(hex.len() / 2);
    for pair in hex.as_bytes().chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// Reads one newline-terminated reply off a blocking stream (the
/// one-shot `ask`/`SHIP`/heartbeat paths; handler-loop reads go through
/// [`LineConn`] instead).
fn read_reply_line(stream: &mut TcpStream) -> io::Result<String> {
    let mut reply = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before reply",
                ))
            }
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => reply.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(String::from_utf8_lossy(&reply).trim_end().to_string())
}

/// One shard's identity and current address.
#[derive(Debug, Clone)]
struct ShardState {
    name: String,
    addr: SocketAddr,
}

/// The live topology: shard addresses plus the ownership map, kept under
/// one lock so routing decisions always see a consistent pair.
struct Topology {
    shards: Vec<ShardState>,
    map: ShardMap,
}

impl Topology {
    fn addr_of(&self, name: &str) -> Option<SocketAddr> {
        self.shards.iter().find(|s| s.name == name).map(|s| s.addr)
    }
}

/// One cluster-wide ticket's current home.
#[derive(Debug, Clone)]
struct TicketEntry {
    /// The shard currently serving the ticket.
    shard: String,
    /// The shard-local ticket id.
    local: u64,
    /// The scenario the ticket runs — needed to re-submit on a replica
    /// when the original shard dies.
    scenario: String,
    /// Set once the ticket was re-homed onto a replica: its responses are
    /// flagged ` degraded=<shard>` so the client can tell stand-in
    /// service from primary service.
    degraded: bool,
    /// The distributed trace id the submission was forwarded under —
    /// `EXPLAIN <ticket>` resolves the cluster id to this trace and fans
    /// the timeline in from every shard.
    trace: u64,
}

/// Cluster-wide ticket table: router ids ↔ per-shard local ids, retained
/// FIFO up to [`RouterConfig::max_tickets`] (the shard daemons bound their
/// own completed-job retention, so an unbounded router-side table would
/// mostly map ids the shards have already forgotten — and grow with every
/// request the router ever served).
#[derive(Default)]
struct TicketTable {
    next: u64,
    forward: HashMap<u64, TicketEntry>,
    reverse: HashMap<(String, u64), u64>,
    /// Allocation order, for FIFO eviction.
    order: VecDeque<u64>,
}

impl TicketTable {
    fn allocate(
        &mut self,
        shard: &str,
        local: u64,
        scenario: &str,
        degraded: bool,
        trace: u64,
        retention: usize,
    ) -> u64 {
        self.next += 1;
        let global = self.next;
        self.forward.insert(
            global,
            TicketEntry {
                shard: shard.to_string(),
                local,
                scenario: scenario.to_string(),
                degraded,
                trace,
            },
        );
        self.reverse.insert((shard.to_string(), local), global);
        self.order.push_back(global);
        if retention > 0 {
            while self.order.len() > retention {
                if let Some(oldest) = self.order.pop_front() {
                    if let Some(entry) = self.forward.remove(&oldest) {
                        self.reverse.remove(&(entry.shard, entry.local));
                    }
                }
            }
        }
        global
    }

    /// Re-homes a cluster ticket onto a replica's fresh local id, marking
    /// it degraded. Returns `false` for an unknown (evicted) id.
    fn remap(&mut self, global: u64, shard: &str, local: u64) -> bool {
        let Some(entry) = self.forward.get_mut(&global) else {
            return false;
        };
        self.reverse.remove(&(entry.shard.clone(), entry.local));
        entry.shard = shard.to_string();
        entry.local = local;
        entry.degraded = true;
        self.reverse.insert((shard.to_string(), local), global);
        true
    }

    fn lookup(&self, global: u64) -> Option<TicketEntry> {
        self.forward.get(&global).cloned()
    }

    /// Whether the ticket has been re-homed onto a replica.
    fn degraded(&self, global: u64) -> bool {
        self.forward.get(&global).is_some_and(|e| e.degraded)
    }

    fn global_for(&self, shard: &str, local: u64) -> Option<u64> {
        self.reverse.get(&(shard.to_string(), local)).copied()
    }

    /// Drops every mapping of `shard` — its process died (or was
    /// replaced), so its local ids no longer name anything.
    fn purge_shard(&mut self, shard: &str) {
        self.forward.retain(|_, e| e.shard != shard);
        self.reverse.retain(|(s, _), _| s != shard);
        let forward = &self.forward;
        self.order.retain(|g| forward.contains_key(g));
    }
}

/// Replication book-keeping: which namespaces need pushing, and what each
/// replica last received.
#[derive(Default)]
struct ReplicationState {
    /// Namespaces with submitted-but-not-yet-run work: their caches will
    /// change, pushing now would ship a stale copy.
    dirty: HashSet<String>,
    /// Namespaces whose `RUN` completed: the cache settled, push on the
    /// next flush.
    ready: HashSet<String>,
    /// `(replica, namespace)` → the content digest last pushed there;
    /// an unchanged digest skips the push entirely.
    pushed: HashMap<(String, String), u64>,
    /// `(replica, namespace)` → the flush sequence number of the last
    /// push; failover prefers the replica with the freshest copy.
    freshness: HashMap<(String, String), u64>,
    /// Monotonic flush sequence.
    seq: u64,
}

struct RouterInner {
    spec: ClusterSpec,
    topology: Mutex<Topology>,
    tickets: Mutex<TicketTable>,
    stop: AtomicBool,
    config: RouterConfig,
    /// The router's own instruments; rendered (unrelabeled — `router_*`
    /// family names cannot collide with shard-side families) at the head
    /// of every merged `METRICS` reply.
    metrics: Arc<MetricsRegistry>,
    /// Shard connections re-established after a send failure or rewire.
    reconnects: Arc<Counter>,
    /// Shard-local ticket ids remapped to cluster-wide ids.
    remaps: Arc<Counter>,
    /// Per-shard breaker + liveness state, fed by heartbeats and forward
    /// failures.
    health: Mutex<HashMap<String, ShardHealth>>,
    /// Replication push queue and per-replica freshness.
    replication: Mutex<ReplicationState>,
    /// The router's own span recorder: per-client trace roots, forward
    /// round-trips and failover re-homes, stitched into the same traces
    /// as the shard-side spans and rendered into `EXPLAIN` timelines
    /// with a `shard=router` suffix.
    tracer: Arc<Tracer>,
}

impl RouterInner {
    fn lock_topology(&self) -> std::sync::MutexGuard<'_, Topology> {
        self.topology.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_tickets(&self) -> std::sync::MutexGuard<'_, TicketTable> {
        self.tickets.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_health(&self) -> std::sync::MutexGuard<'_, HashMap<String, ShardHealth>> {
        self.health.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_replication(&self) -> std::sync::MutexGuard<'_, ReplicationState> {
        self.replication
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The effective replication factor (at least 1).
    fn k(&self) -> usize {
        self.config.replication.max(1)
    }

    /// Pre-registers every per-shard family so scrapes see them (at zero)
    /// from the first exposition, not only after the first event.
    fn register_shard_metrics(&self, shard: &str) {
        self.metrics
            .gauge_with("router_circuit_state", CIRCUIT_HELP, &[("shard", shard)])
            .set(CircuitState::Closed.gauge());
        let _ = self.metrics.counter_with(
            "router_heartbeat_misses_total",
            HEARTBEAT_MISS_HELP,
            &[("shard", shard)],
        );
        let _ =
            self.metrics
                .counter_with("router_failovers_total", FAILOVER_HELP, &[("shard", shard)]);
        let _ = self
            .metrics
            .histogram_with("router_backoff_ms", BACKOFF_HELP, &[("shard", shard)]);
    }

    /// Publishes `shard`'s breaker position to the state gauge.
    fn publish_circuit(&self, shard: &str, state: CircuitState) {
        self.metrics
            .gauge_with("router_circuit_state", CIRCUIT_HELP, &[("shard", shard)])
            .set(state.gauge());
    }

    /// Records a successful probe or forward against `shard`.
    fn note_success(&self, shard: &str) {
        let state = {
            let mut health = self.lock_health();
            let entry = health.entry(shard.to_string()).or_default();
            entry.on_success();
            entry.state
        };
        self.publish_circuit(shard, state);
    }

    /// Records a failed probe (`heartbeat_miss = true`, counted in the
    /// miss family) or a failed forward against `shard`.
    fn note_failure(&self, shard: &str, heartbeat_miss: bool) {
        if heartbeat_miss {
            self.metrics
                .counter_with(
                    "router_heartbeat_misses_total",
                    HEARTBEAT_MISS_HELP,
                    &[("shard", shard)],
                )
                .inc();
        }
        let state = {
            let mut health = self.lock_health();
            let entry = health.entry(shard.to_string()).or_default();
            entry.on_failure(self.config.heartbeat_misses.max(1));
            entry.state
        };
        self.publish_circuit(shard, state);
    }

    /// Whether a request may be attempted against `shard` right now
    /// (possibly flipping an expired open breaker to half-open).
    fn allow_attempt(&self, shard: &str) -> bool {
        let (allowed, state) = {
            let mut health = self.lock_health();
            let entry = health.entry(shard.to_string()).or_default();
            (entry.allow_attempt(self.config.open_cooldown), entry.state)
        };
        self.publish_circuit(shard, state);
        allowed
    }

    /// Whether `shard` is currently declared unhealthy (breaker not
    /// closed).
    fn shard_down(&self, shard: &str) -> bool {
        self.lock_health()
            .get(shard)
            .is_some_and(|h| h.state != CircuitState::Closed)
    }

    /// The sorted names of shards currently declared unhealthy.
    fn degraded_shards(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .lock_health()
            .iter()
            .filter(|(_, h)| h.state != CircuitState::Closed)
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// Forgets `shard`'s health and replica-freshness history — the
    /// recovery path after a rewire (the new process starts from its
    /// snapshot; pushed copies must be re-shipped).
    fn reset_health(&self, shard: &str) {
        self.lock_health()
            .insert(shard.to_string(), ShardHealth::default());
        self.publish_circuit(shard, CircuitState::Closed);
        let mut rep = self.lock_replication();
        rep.pushed.retain(|(replica, _), _| replica != shard);
        rep.freshness.retain(|(replica, _), _| replica != shard);
    }

    /// Bumps the failover counter of the shard routed *away from*.
    fn count_failover(&self, dead: &str) {
        self.metrics
            .counter_with("router_failovers_total", FAILOVER_HELP, &[("shard", dead)])
            .inc();
    }

    /// One-shot request/response against a shard daemon.
    fn ask(&self, shard: &str, addr: SocketAddr, line: &str) -> Result<String, ServiceError> {
        let fail = |reason: String| ServiceError::ShardUnavailable {
            shard: shard.to_string(),
            reason,
        };
        let mut stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)
            .map_err(|e| fail(e.to_string()))?;
        stream
            .set_read_timeout(Some(self.config.ship_timeout))
            .map_err(|e| fail(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| fail(e.to_string()))?;
        stream
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| fail(e.to_string()))?;
        read_reply_line(&mut stream).map_err(|e| fail(e.to_string()))
    }

    /// Exports `namespaces` from a shard over the wire: one `EXPORT`
    /// round-trip, returning the content digest and the decoded snapshot
    /// bytes (empty when the shard holds nothing for them).
    fn wire_export(
        &self,
        shard: &str,
        addr: SocketAddr,
        namespaces: &[String],
    ) -> Result<(u64, Vec<u8>), ServiceError> {
        let reply = self.ask(shard, addr, &format!("EXPORT {}", namespaces.join(" ")))?;
        let fail = |reason: String| ServiceError::ShardUnavailable {
            shard: shard.to_string(),
            reason,
        };
        let mut tokens = reply.split_whitespace();
        if tokens.next() != Some("SHIPMENT") {
            return Err(fail(reply.clone()));
        }
        let digest = tokens
            .next()
            .and_then(|t| u64::from_str_radix(t, 16).ok())
            .ok_or_else(|| fail(format!("malformed SHIPMENT digest in {reply:?}")))?;
        let len: usize = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| fail(format!("malformed SHIPMENT length in {reply:?}")))?;
        // A zero-length shipment renders with no hex token at all.
        let hex = tokens.next().unwrap_or("");
        let payload =
            hex_decode(hex).ok_or_else(|| fail(format!("malformed SHIPMENT hex in {reply:?}")))?;
        if payload.len() != len {
            return Err(fail(format!(
                "SHIPMENT length mismatch: header {len}, payload {}",
                payload.len()
            )));
        }
        Ok((digest, payload))
    }

    /// Pushes snapshot bytes into a shard over the wire with the
    /// binary-framed `SHIP` verb, returning the restored entry count.
    fn wire_ship(
        &self,
        shard: &str,
        addr: SocketAddr,
        namespaces: &[String],
        payload: &[u8],
    ) -> Result<u64, ServiceError> {
        let fail = |reason: String| ServiceError::ShardUnavailable {
            shard: shard.to_string(),
            reason,
        };
        let mut stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)
            .map_err(|e| fail(e.to_string()))?;
        stream
            .set_read_timeout(Some(self.config.ship_timeout))
            .map_err(|e| fail(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| fail(e.to_string()))?;
        let header = format!("SHIP {} {}\n", namespaces.join(" "), payload.len());
        stream
            .write_all(header.as_bytes())
            .map_err(|e| fail(e.to_string()))?;
        stream.write_all(payload).map_err(|e| fail(e.to_string()))?;
        let reply = read_reply_line(&mut stream).map_err(|e| fail(e.to_string()))?;
        reply
            .strip_prefix("OK ")
            .and_then(|n| n.trim().parse::<u64>().ok())
            .ok_or_else(|| fail(reply.clone()))
    }

    /// Marks a namespace as having submitted-but-not-run work.
    fn mark_dirty(&self, namespace: &str) {
        if self.k() > 1 {
            self.lock_replication().dirty.insert(namespace.to_string());
        }
    }

    /// Promotes dirty namespaces to ready — called once a cluster `RUN`
    /// completed, i.e. their caches have settled.
    fn promote_dirty(&self) {
        let mut rep = self.lock_replication();
        let dirty: Vec<String> = rep.dirty.drain().collect();
        rep.ready.extend(dirty);
    }

    /// Pushes every ready namespace from its live primary to its live
    /// replicas (digest-skipped when unchanged). Namespaces that fail to
    /// replicate are requeued for the next flush. Returns the total
    /// number of `(replica, namespace)` copies currently confirmed warm.
    fn flush_ready_replication(&self) -> usize {
        let ready: Vec<String> = {
            let mut rep = self.lock_replication();
            rep.ready.drain().collect()
        };
        let mut requeue = Vec::new();
        for namespace in &ready {
            if self.replicate_namespace(namespace).is_err() {
                requeue.push(namespace.clone());
            }
        }
        let mut rep = self.lock_replication();
        rep.ready.extend(requeue);
        rep.pushed.len()
    }

    /// Ships one namespace from its highest-ranked live owner to every
    /// other live owner that does not already hold the current bytes.
    fn replicate_namespace(&self, namespace: &str) -> Result<(), ServiceError> {
        let k = self.k();
        if k <= 1 {
            return Ok(());
        }
        let (owners, addrs) = {
            let topology = self.lock_topology();
            let owners: Vec<String> = topology
                .map
                .owners_of_namespace(namespace, k)
                .iter()
                .map(|s| s.to_string())
                .collect();
            let addrs: HashMap<String, SocketAddr> = owners
                .iter()
                .filter_map(|o| topology.addr_of(o).map(|a| (o.clone(), a)))
                .collect();
            (owners, addrs)
        };
        let primary = owners
            .iter()
            .find(|o| !self.shard_down(o) && addrs.contains_key(*o))
            .cloned()
            .ok_or_else(|| ServiceError::ShardUnavailable {
                shard: owners.first().cloned().unwrap_or_default(),
                reason: format!("no live owner to export namespace {namespace} from"),
            })?;
        let namespaces = [namespace.to_string()];
        let (digest, payload) = self.wire_export(&primary, addrs[&primary], &namespaces)?;
        if payload.is_empty() {
            return Ok(());
        }
        let seq = {
            let mut rep = self.lock_replication();
            rep.seq += 1;
            rep.seq
        };
        let mut first_err = None;
        for replica in owners.iter().filter(|o| **o != primary) {
            let key = (replica.clone(), namespace.to_string());
            if self.shard_down(replica) {
                first_err.get_or_insert_with(|| ServiceError::ShardUnavailable {
                    shard: replica.clone(),
                    reason: "replica down during replication flush".to_string(),
                });
                continue;
            }
            let Some(addr) = addrs.get(replica).copied() else {
                continue;
            };
            if self.lock_replication().pushed.get(&key) == Some(&digest) {
                continue;
            }
            match self.wire_ship(replica, addr, &namespaces, &payload) {
                Ok(_) => {
                    let mut rep = self.lock_replication();
                    rep.pushed.insert(key.clone(), digest);
                    rep.freshness.insert(key, seq);
                }
                Err(err) => {
                    first_err.get_or_insert(err);
                }
            }
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Re-homes a cluster ticket whose shard is dead: re-submits the
    /// scenario on the freshest live replica, runs it there (warm cache —
    /// zero paid valuations when replication kept up), and remaps the
    /// cluster id in place. Returns the new entry, or a ready-to-emit
    /// protocol error line.
    fn failover_ticket(&self, global: u64, entry: &TicketEntry) -> Result<TicketEntry, String> {
        let dead = entry.shard.clone();
        let no_replica =
            || format!("ERR shard {dead} unavailable (no live replica for ticket {global})");
        let Some(namespace) = self.spec.namespace_of(&entry.scenario).map(str::to_string) else {
            return Err(no_replica());
        };
        let candidates: Vec<(String, SocketAddr)> = {
            let topology = self.lock_topology();
            let owners: Vec<String> = topology
                .map
                .owners_of_namespace(&namespace, self.k())
                .iter()
                .map(|s| s.to_string())
                .collect();
            owners
                .into_iter()
                .filter(|o| *o != dead)
                .filter_map(|o| topology.addr_of(&o).map(|a| (o, a)))
                .collect()
        };
        let mut candidates: Vec<(String, SocketAddr)> = candidates
            .into_iter()
            .filter(|(name, _)| !self.shard_down(name))
            .collect();
        {
            // Freshest replica first; the sort is stable, so rendezvous
            // rank breaks ties.
            let rep = self.lock_replication();
            candidates.sort_by_key(|(name, _)| {
                std::cmp::Reverse(
                    rep.freshness
                        .get(&(name.clone(), namespace.clone()))
                        .copied()
                        .unwrap_or(0),
                )
            });
        }
        // The re-submission rides on the original submission's trace, so
        // the `failover` span (and the replacement shard's spans) stitch
        // into the same EXPLAIN timeline as the first attempt.
        let ctx = self.tracer.child_context(TraceContext {
            trace_id: entry.trace,
            span_id: 0,
            parent_id: 0,
        });
        let failover_start = Instant::now();
        for (name, addr) in candidates {
            let submitted = match self.ask(
                &name,
                addr,
                &with_ctx(ctx, &format!("SUBMIT {}", entry.scenario)),
            ) {
                Ok(reply) => reply,
                Err(_) => {
                    self.note_failure(&name, false);
                    continue;
                }
            };
            let Some(local) = submitted
                .strip_prefix("TICKET ")
                .and_then(|s| s.trim().parse::<u64>().ok())
            else {
                continue;
            };
            let ran = match self.ask(&name, addr, &with_ctx(ctx, "RUN")) {
                Ok(reply) => reply,
                Err(_) => continue,
            };
            if !ran.starts_with("OK") {
                continue;
            }
            if !self.lock_tickets().remap(global, &name, local) {
                return Err(format!("ERR unknown ticket {global}"));
            }
            self.count_failover(&dead);
            if entry.trace != 0 {
                self.tracer
                    .record_at("failover", ctx, failover_start, failover_start.elapsed());
            }
            return Ok(TicketEntry {
                shard: name,
                local,
                scenario: entry.scenario.clone(),
                degraded: true,
                trace: entry.trace,
            });
        }
        Err(no_replica())
    }
}

/// What a rebalancing operation shipped: one entry per moved namespace
/// copy (under K-way replication one namespace may ship to several
/// shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedNamespace {
    /// The namespace that changed owner.
    pub namespace: String,
    /// The shard it moved from.
    pub from: String,
    /// The shard it moved to.
    pub to: String,
}

/// A running cluster router: the bound address, the front thread (which
/// accepts and serves every client connection through one poller) and
/// the heartbeat thread.
pub struct Router {
    inner: Arc<RouterInner>,
    addr: SocketAddr,
    front_thread: Mutex<Option<JoinHandle<()>>>,
    /// Interrupts the front thread's poller wait so [`Router::stop`]
    /// never waits out a full timeout.
    front_wakeup: Wakeup,
    heartbeat_thread: Mutex<Option<JoinHandle<()>>>,
    /// Serialises join/leave/rewire so two topology changes cannot
    /// interleave their shipping phases.
    lifecycle: Mutex<()>,
}

impl Router {
    /// Binds the router on `addr` over the given shard daemons (name,
    /// address). Shard names must be non-empty single tokens; at least one
    /// shard is required.
    pub fn bind(
        spec: ClusterSpec,
        shards: Vec<(String, SocketAddr)>,
        addr: &str,
    ) -> io::Result<Router> {
        Router::bind_with(spec, shards, addr, RouterConfig::default())
    }

    /// [`Router::bind`] with explicit tuning.
    pub fn bind_with(
        spec: ClusterSpec,
        shards: Vec<(String, SocketAddr)>,
        addr: &str,
        config: RouterConfig,
    ) -> io::Result<Router> {
        if shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard",
            ));
        }
        let mut map = ShardMap::new();
        let mut states = Vec::new();
        for (name, addr) in shards {
            if let Err(reason) = validate_token(&name, "shard name") {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, reason));
            }
            if !map.add(name.clone()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("shard name {name:?} listed twice"),
                ));
            }
            states.push(ShardState { name, addr });
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(MetricsRegistry::new());
        let reconnects = metrics.counter(
            "router_reconnects_total",
            "Shard connections re-established after a send failure or rewire.",
        );
        let remaps = metrics.counter(
            "router_ticket_remaps_total",
            "Shard-local ticket ids remapped to cluster-wide ids.",
        );
        let inner = Arc::new(RouterInner {
            spec,
            topology: Mutex::new(Topology {
                shards: states,
                map,
            }),
            tickets: Mutex::new(TicketTable::default()),
            stop: AtomicBool::new(false),
            config,
            metrics,
            reconnects,
            remaps,
            health: Mutex::new(HashMap::new()),
            replication: Mutex::new(ReplicationState::default()),
            tracer: Arc::new(Tracer::with_capacity(4096)),
        });
        {
            let topology = inner.lock_topology();
            let names: Vec<String> = topology.shards.iter().map(|s| s.name.clone()).collect();
            drop(topology);
            for name in names {
                inner.register_shard_metrics(&name);
            }
        }
        // The client-facing front runs on one poller-driven thread (the
        // same readiness core as the daemon's reactor); its poller and
        // wakeup channel are built here so a failure surfaces as a bind
        // error instead of a silently dead thread.
        let (front_wakeup, front_wakeup_rx) = wakeup_pair()?;
        front_wakeup_rx.set_nonblocking(true)?;
        let mut front_poller = Poller::new()?;
        front_poller.register(
            poller::source(&front_wakeup_rx),
            FRONT_WAKEUP,
            Interest::READ,
        )?;
        front_poller.register(poller::source(&listener), FRONT_LISTENER, Interest::READ)?;
        let front_thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || front_loop(front_poller, listener, front_wakeup_rx, inner))
        };
        let heartbeat_thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || heartbeat_loop(inner))
        };
        Ok(Router {
            inner,
            addr,
            front_thread: Mutex::new(Some(front_thread)),
            front_wakeup,
            heartbeat_thread: Mutex::new(Some(heartbeat_thread)),
            lifecycle: Mutex::new(()),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's own metrics registry (forward latency, reconnects,
    /// ticket remaps, heartbeat misses, failovers, backoff delays and
    /// circuit states per shard). Rendered at the head of every merged
    /// `METRICS` reply; exposed for tests and embedding processes.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.inner.metrics
    }

    /// A snapshot of the current ownership map.
    pub fn shard_map(&self) -> ShardMap {
        self.inner.lock_topology().map.clone()
    }

    /// The current shard set with addresses, sorted by name.
    pub fn shards(&self) -> Vec<(String, SocketAddr)> {
        let topology = self.inner.lock_topology();
        let mut shards: Vec<(String, SocketAddr)> = topology
            .shards
            .iter()
            .map(|s| (s.name.clone(), s.addr))
            .collect();
        shards.sort();
        shards
    }

    /// The shard currently owning `namespace` (the replication primary).
    pub fn owner_of(&self, namespace: &str) -> Option<String> {
        self.inner
            .lock_topology()
            .map
            .owner_of_namespace(namespace)
            .map(str::to_string)
    }

    /// The ranked owner set of `namespace` under the configured
    /// replication factor: the primary first, then the failover replicas.
    pub fn owners_of(&self, namespace: &str) -> Vec<String> {
        self.inner
            .lock_topology()
            .map
            .owners_of_namespace(namespace, self.inner.k())
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// The current circuit-breaker position of `shard` as seen by the
    /// heartbeat/forward machinery ([`CircuitState::Closed`] for a shard
    /// that has never failed).
    pub fn circuit_state(&self, shard: &str) -> CircuitState {
        self.inner
            .lock_health()
            .get(shard)
            .map(|h| h.state)
            .unwrap_or(CircuitState::Closed)
    }

    /// Promotes every pending namespace and pushes it to its replicas
    /// immediately, without waiting for the heartbeat thread's next tick.
    /// Returns the total number of `(replica, namespace)` copies
    /// currently confirmed warm cluster-wide. A no-op returning 0 when
    /// replication is off (`replication <= 1`).
    pub fn flush_replication(&self) -> usize {
        if self.inner.k() <= 1 {
            return 0;
        }
        self.inner.promote_dirty();
        self.inner.flush_ready_replication()
    }

    /// Adds a shard daemon to the cluster. Ownership is recomputed; every
    /// namespace copy the new shard now owns (as primary *or* replica) is
    /// shipped over the wire from a surviving owner **before** routing
    /// flips, so the new shard's first request finds the warm cache
    /// already in place. Returns the shipped namespace copies.
    pub fn join_shard(
        &self,
        name: &str,
        addr: SocketAddr,
    ) -> Result<Vec<ShippedNamespace>, ServiceError> {
        validate_token(name, "shard name").map_err(ServiceError::InvalidTopology)?;
        let _lifecycle = self
            .lifecycle
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let before = {
            let topology = self.inner.lock_topology();
            if topology.addr_of(name).is_some() {
                return Err(ServiceError::InvalidTopology(format!(
                    "shard {name:?} is already a member"
                )));
            }
            topology.map.clone()
        };
        let mut after = before.clone();
        after.add(name.to_string());

        let (shipped, by_pair) = replica_plan(&self.inner, &before, &after);
        for ((source, target), namespaces) in by_pair {
            debug_assert_eq!(
                target, name,
                "rendezvous join granted a namespace to an unrelated shard"
            );
            let source_addr = self.inner.lock_topology().addr_of(&source).ok_or_else(|| {
                ServiceError::InvalidTopology(format!("shard {source:?} vanished"))
            })?;
            let target_addr = if target == name {
                addr
            } else {
                self.inner.lock_topology().addr_of(&target).ok_or_else(|| {
                    ServiceError::InvalidTopology(format!("shard {target:?} vanished"))
                })?
            };
            self.ship(&source, source_addr, &namespaces, &target, target_addr)?;
        }

        let mut topology = self.inner.lock_topology();
        topology.shards.push(ShardState {
            name: name.to_string(),
            addr,
        });
        topology.map = after;
        drop(topology);
        self.inner.register_shard_metrics(name);
        Ok(shipped)
    }

    /// Removes a shard gracefully: every namespace copy it held that now
    /// belongs elsewhere is shipped over the wire first (from a surviving
    /// warm owner when one exists, else from the leaver itself), then
    /// routing flips and the shard's tickets are invalidated. (For a
    /// *crashed* shard there is nothing to ask — with replication on, the
    /// replicas already serve; otherwise restart it from its last
    /// snapshot and [`Router::set_shard_addr`] it back in.)
    pub fn leave_shard(&self, name: &str) -> Result<Vec<ShippedNamespace>, ServiceError> {
        let _lifecycle = self
            .lifecycle
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let before = {
            let topology = self.inner.lock_topology();
            topology.addr_of(name).ok_or_else(|| {
                ServiceError::InvalidTopology(format!("shard {name:?} is not a member"))
            })?;
            topology.map.clone()
        };
        if before.len() == 1 {
            return Err(ServiceError::InvalidTopology(
                "cannot remove the last shard".to_string(),
            ));
        }
        let mut after = before.clone();
        after.remove(name);

        let (shipped, by_pair) = replica_plan(&self.inner, &before, &after);
        for ((source, target), namespaces) in by_pair {
            let source_addr = self.inner.lock_topology().addr_of(&source).ok_or_else(|| {
                ServiceError::InvalidTopology(format!("shard {source:?} vanished"))
            })?;
            let target_addr = self.inner.lock_topology().addr_of(&target).ok_or_else(|| {
                ServiceError::InvalidTopology(format!("shard {target:?} vanished"))
            })?;
            self.ship(&source, source_addr, &namespaces, &target, target_addr)?;
        }

        let mut topology = self.inner.lock_topology();
        topology.shards.retain(|s| s.name != name);
        topology.map = after;
        drop(topology);
        self.inner.lock_tickets().purge_shard(name);
        self.inner.lock_health().remove(name);
        {
            let mut rep = self.inner.lock_replication();
            rep.pushed.retain(|(replica, _), _| replica != name);
            rep.freshness.retain(|(replica, _), _| replica != name);
        }
        Ok(shipped)
    }

    /// Rewires a shard to a new address — the recovery path after a crash
    /// and restart (`Service::from_snapshot` + a fresh daemon). The dead
    /// process's tickets are invalidated (its queued/finished jobs died
    /// with it; the snapshot carries evaluations, not job state), its
    /// circuit breaker and replica-freshness history are reset, and
    /// handler connections to the old address are dropped on their next
    /// use.
    pub fn set_shard_addr(&self, name: &str, addr: SocketAddr) -> Result<(), ServiceError> {
        let _lifecycle = self
            .lifecycle
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        {
            let mut topology = self.inner.lock_topology();
            let shard = topology
                .shards
                .iter_mut()
                .find(|s| s.name == name)
                .ok_or_else(|| {
                    ServiceError::InvalidTopology(format!("shard {name:?} is not a member"))
                })?;
            shard.addr = addr;
        }
        self.inner.lock_tickets().purge_shard(name);
        self.inner.reset_health(name);
        Ok(())
    }

    /// Ships `namespaces` from one shard to another entirely over the
    /// wire: `EXPORT` on the source, binary-framed `SHIP` into the
    /// target. No staging file, no shared filesystem.
    fn ship(
        &self,
        source: &str,
        source_addr: SocketAddr,
        namespaces: &[String],
        target: &str,
        target_addr: SocketAddr,
    ) -> Result<(), ServiceError> {
        let (digest, payload) = self.inner.wire_export(source, source_addr, namespaces)?;
        if payload.is_empty() {
            // Nothing cached for these namespaces yet — nothing to ship.
            return Ok(());
        }
        self.inner
            .wire_ship(target, target_addr, namespaces, &payload)?;
        if let [namespace] = namespaces {
            // Single-namespace shipments double as replication pushes:
            // remember the digest so the next flush can skip it.
            let mut rep = self.inner.lock_replication();
            let seq = {
                rep.seq += 1;
                rep.seq
            };
            let key = (target.to_string(), namespace.clone());
            rep.pushed.insert(key.clone(), digest);
            rep.freshness.insert(key, seq);
        }
        Ok(())
    }

    /// Stops the router: the front thread flushes a final protocol error
    /// to every open client and exits, the heartbeat thread exits, both
    /// are joined. Idempotent, including under concurrent callers (same
    /// discipline as [`crate::Daemon::stop`]). Shard daemons are *not*
    /// stopped — they are independent processes.
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        let mut front = self
            .front_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Notified under the lock, after the flag store: the wakeup byte
        // interrupts the front thread's poller wait so stop never sleeps
        // out a full timeout.
        self.front_wakeup.notify();
        if let Some(handle) = front.take() {
            let _ = handle.join();
        }
        drop(front);
        let mut heartbeat = self
            .heartbeat_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(handle) = heartbeat.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The minimal replica-aware shipping plan between two topologies: for
/// every namespace, each shard that newly enters its owner set receives a
/// copy from the warmest surviving old owner (falling back to the old
/// primary when the whole set turns over). Returns the flat shipment list
/// and the work grouped by `(source, target)` pair.
#[allow(clippy::type_complexity)]
fn replica_plan(
    inner: &Arc<RouterInner>,
    before: &ShardMap,
    after: &ShardMap,
) -> (Vec<ShippedNamespace>, Vec<((String, String), Vec<String>)>) {
    let k = inner.k();
    let mut shipped = Vec::new();
    let mut by_pair: Vec<((String, String), Vec<String>)> = Vec::new();
    for namespace in inner.spec.namespaces() {
        let before_owners: Vec<String> = before
            .owners_of_namespace(namespace, k)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let after_owners: Vec<String> = after
            .owners_of_namespace(namespace, k)
            .iter()
            .map(|s| s.to_string())
            .collect();
        for target in after_owners.iter().filter(|t| !before_owners.contains(t)) {
            let Some(source) = before_owners
                .iter()
                .find(|s| after_owners.contains(s))
                .or_else(|| before_owners.first())
            else {
                continue;
            };
            let pair = (source.clone(), target.clone());
            match by_pair.iter_mut().find(|(p, _)| *p == pair) {
                Some((_, namespaces)) => namespaces.push(namespace.to_string()),
                None => by_pair.push((pair, vec![namespace.to_string()])),
            }
            shipped.push(ShippedNamespace {
                namespace: namespace.to_string(),
                from: source.clone(),
                to: target.clone(),
            });
        }
    }
    (shipped, by_pair)
}

/// One heartbeat probe: connect, `PING`, expect `PONG`, all under the
/// heartbeat timeout.
fn heartbeat_probe(inner: &RouterInner, addr: SocketAddr) -> io::Result<()> {
    let timeout = inner.config.heartbeat_timeout.max(Duration::from_millis(1));
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    stream.write_all(b"PING\n")?;
    let reply = read_reply_line(&mut stream)?;
    if reply == "PONG" {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected heartbeat reply {reply:?}"),
        ))
    }
}

/// The heartbeat thread: probes every shard each interval (feeding the
/// breakers), then flushes pending replication pushes. Sleeps in small
/// slices so [`Router::stop`] is never blocked behind a full interval.
fn heartbeat_loop(inner: Arc<RouterInner>) {
    while !inner.stop.load(Ordering::SeqCst) {
        let shards: Vec<(String, SocketAddr)> = inner
            .lock_topology()
            .shards
            .iter()
            .map(|s| (s.name.clone(), s.addr))
            .collect();
        for (name, addr) in shards {
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            match heartbeat_probe(&inner, addr) {
                Ok(()) => inner.note_success(&name),
                Err(_) => inner.note_failure(&name, true),
            }
        }
        if inner.k() > 1 && !inner.stop.load(Ordering::SeqCst) {
            let _ = inner.flush_ready_replication();
        }
        let deadline = Instant::now() + inner.config.heartbeat_interval;
        while !inner.stop.load(Ordering::SeqCst) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
        }
    }
}

/// Poller token of the front thread's wakeup receiver.
const FRONT_WAKEUP: usize = 0;
/// Poller token of the front thread's listening socket.
const FRONT_LISTENER: usize = 1;
/// Front poller tokens at and above this are client slots.
const FRONT_BASE: usize = 2;

/// Backstop poller timeout while no client owes any response: nothing can
/// come due spontaneously, so the wait only needs to re-check the stop
/// flag now and then (readiness interrupts it for real work).
const FRONT_IDLE_PARK: Duration = Duration::from_millis(10);

/// A line-buffered connection polled with a read timeout.
struct LineConn {
    stream: TcpStream,
    buf: Vec<u8>,
    eof: bool,
}

/// One poll of a [`LineConn`].
enum Polled {
    /// A complete line (terminator stripped).
    Line(String),
    /// Nothing complete yet.
    Pending,
    /// Orderly end of input; a final unterminated line was already
    /// surfaced as [`Polled::Line`].
    Eof,
    /// The connection failed.
    Dead,
}

impl LineConn {
    fn new(stream: TcpStream, poll_interval: Duration) -> io::Result<LineConn> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(poll_interval.max(Duration::from_micros(1))))?;
        Ok(LineConn {
            stream,
            buf: Vec::new(),
            eof: false,
        })
    }

    fn send(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(format!("{line}\n").as_bytes())
    }

    /// Returns the next complete line, reading at most one chunk from the
    /// socket when the buffer has none.
    fn poll_line(&mut self) -> Polled {
        if let Some(line) = self.take_buffered_line() {
            return Polled::Line(line);
        }
        if self.eof {
            return self.drain_tail_or_eof();
        }
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                self.eof = true;
                self.drain_tail_or_eof()
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                match self.take_buffered_line() {
                    Some(line) => Polled::Line(line),
                    None => Polled::Pending,
                }
            }
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut
                    || err.kind() == io::ErrorKind::Interrupted =>
            {
                Polled::Pending
            }
            Err(_) => Polled::Dead,
        }
    }

    fn take_buffered_line(&mut self) -> Option<String> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
        line.pop();
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    fn drain_tail_or_eof(&mut self) -> Polled {
        if self.buf.is_empty() {
            Polled::Eof
        } else {
            let line = String::from_utf8_lossy(&std::mem::take(&mut self.buf)).into_owned();
            Polled::Line(line)
        }
    }
}

/// A cached connection to one shard, pinned to the address it was opened
/// against so a rewired shard invalidates it, and stamped with an epoch
/// so an expectation can only ever read from the *same* connection its
/// request was sent on (a response owed by a dead connection must fail,
/// never consume a fresh connection's line for a later request).
struct ShardConn {
    conn: LineConn,
    addr: SocketAddr,
    epoch: u64,
}

/// One client handler's shard connections plus the epoch counter.
#[derive(Default)]
struct ConnPool {
    conns: HashMap<String, ShardConn>,
    next_epoch: u64,
}

/// Rewrite applied to a single forwarded response line.
enum Rewrite {
    /// `SUBMIT`: translate `TICKET <local>` to a cluster-wide id,
    /// remembering the scenario (for failover re-submission) and whether
    /// the request was already routed to a stand-in replica.
    Submit {
        /// The submitted scenario name.
        scenario: String,
        /// Routed to a replica because the primary was down.
        degraded: bool,
        /// The trace context the submission was forwarded under; its
        /// trace id is remembered in the ticket table for `EXPLAIN`.
        ctx: TraceContext,
    },
    /// `POLL`: pass through, but re-express `ERR unknown ticket` with the
    /// cluster id the client asked about.
    TicketErr {
        /// The cluster-wide ticket id of the request.
        global: u64,
    },
    /// `RESULT`: rewrite the echoed ticket id to the cluster id and flag
    /// stand-in service with a trailing ` degraded=<shard>` token.
    Result {
        /// The cluster-wide ticket id of the request.
        global: u64,
    },
}

/// A fan-out verb's accumulator.
enum FanKind {
    /// `RUN`: sum the per-shard `OK <n>` counts.
    Run {
        /// Jobs executed across all reachable shards.
        total: u64,
    },
    /// `SNAPSHOT <path>`: sum the per-shard `OK <bytes>` sizes, tracking
    /// which per-shard files were written so a failed fan-out can remove
    /// its partial output.
    Snapshot {
        /// Bytes written across all shards.
        total: u64,
        /// The client-given base path (per-shard files are
        /// `<base>.<shard>`).
        base: String,
        /// Shards whose snapshot file was confirmed written.
        written: Vec<String>,
    },
    /// `STATS`: sum the per-shard cache counters.
    Stats {
        /// Running sums in [`STAT_KEYS`] order.
        sums: [u64; 8],
    },
}

/// STATS keys aggregated cluster-wide, in output order.
const STAT_KEYS: [&str; 8] = [
    "hits",
    "misses",
    "entries",
    "evictions",
    "memo_entries",
    "memo_evictions",
    "dominance_comparisons",
    "dominance_pruned",
];

/// One pending `WAIT` slice on one shard: the cluster ids still owed.
struct WaitPart {
    shard: String,
    epoch: u64,
    globals: Vec<u64>,
}

/// Which counted multi-line verb a [`Expect::Gather`] is collecting.
#[derive(Clone, Copy, PartialEq, Eq)]
enum GatherKind {
    /// `METRICS`: per-shard header `METRICS <n>`, merged with `shard=`
    /// labels; an unreachable shard degrades to a comment line.
    Metrics,
    /// `TRACE DUMP <n>`: per-shard header `SPANS <k>`, merged with a
    /// `shard=` suffix; an unreachable shard fails the whole reply.
    Trace,
    /// `EXPLAIN` (fanned out as `EXPLAIN TRACE <id>`): per-shard header
    /// `TIMELINE <k>`, merged time-ordered with a `shard=` suffix plus
    /// the router's own spans for the trace; an unreachable shard fails
    /// the whole reply (a partial timeline silently lies).
    Explain {
        /// The trace id being stitched.
        trace: u64,
    },
    /// `TRACE SLOW <n>`: per-shard header `SLOW <k>`, merged
    /// slowest-first with a `shard=` suffix; an unreachable shard fails
    /// the whole reply.
    Slow,
}

impl GatherKind {
    /// The header word a shard's reply must start with.
    fn header(self) -> &'static str {
        match self {
            GatherKind::Metrics => "METRICS",
            GatherKind::Trace => "SPANS",
            GatherKind::Explain { .. } => "TIMELINE",
            GatherKind::Slow => "SLOW",
        }
    }
}

/// One shard's slice of a counted multi-line fan-in.
struct GatherPart {
    shard: String,
    epoch: u64,
    /// `None` until the `<HEADER> <n>` count line arrives.
    remaining: Option<usize>,
    /// Body lines collected so far (un-relabeled).
    lines: Vec<String>,
    /// Set when the shard failed (unavailable, or a malformed header).
    failed: Option<String>,
}

impl GatherPart {
    fn done(&self) -> bool {
        self.failed.is_some() || self.remaining == Some(0)
    }
}

/// One response position in a client's ordered pipeline (the router-side
/// mirror of the reactor's `Slot`). Every shard-owed response carries the
/// epoch of the connection its request went out on.
enum Expect {
    /// The response text is known (may span multiple lines).
    Local(String),
    /// `BYE`, then close the connection.
    Quit,
    /// One line owed by one shard.
    Forward {
        shard: String,
        epoch: u64,
        rewrite: Rewrite,
        /// When the request left the router (feeds the per-shard
        /// forward-latency histogram on resolution).
        sent: Instant,
        /// The original client request, re-dispatched through
        /// [`route_request`] (which re-resolves ownership and failover)
        /// when the owed connection dies.
        request: String,
        /// Remaining re-dispatch budget for this pipeline position.
        retries_left: u8,
        /// The trace context this forward was sent under
        /// ([`TraceContext::NONE`] when untraced): its round-trip is
        /// recorded as a `forward` span — the parent of every shard-side
        /// span the request produced — when the response arrives.
        trace: TraceContext,
    },
    /// One line owed by each listed shard, folded into one response.
    FanOut {
        kind: FanKind,
        pending: Vec<(String, u64)>,
        error: Option<String>,
        /// Shards skipped because they were unreachable — the degraded
        /// remainder of a `RUN`/`STATS` fan-out.
        skipped: Vec<String>,
    },
    /// A cross-shard `WAIT`: local error lines first, then streamed
    /// `DONE`s merged in arrival order.
    Wait {
        pre: Vec<String>,
        parts: Vec<WaitPart>,
    },
    /// A counted multi-line reply owed by each shard (`METRICS` /
    /// `TRACE DUMP`), merged into one counted reply with shard labels.
    Gather {
        kind: GatherKind,
        parts: Vec<GatherPart>,
    },
}

/// One client connection on the router's front thread: the buffered line
/// connection, its pinned shard-connection pool, the ordered pipeline of
/// owed responses, and the registration state mirrored from the poller.
struct FrontClient {
    conn: LineConn,
    /// One distributed trace per client connection: every request routed
    /// on this connection forwards under a child of this context, so a
    /// SUBMIT/RUN/WAIT conversation stitches into a single EXPLAIN
    /// timeline across the router and every shard it touched.
    ctx: TraceContext,
    pool: ConnPool,
    expects: VecDeque<Expect>,
    /// An oversized line is being discarded up to its terminator.
    discarding: bool,
    /// No more requests will arrive; pending expectations still resolve.
    eof: bool,
    /// The interest currently registered with the front poller.
    interest: Interest,
}

/// The router's front thread: accepts and serves **every** client
/// connection through one poller — the same O(ready) readiness core as
/// the daemon's reactor, replacing the former thread-per-connection
/// handler model. Client sockets stay *blocking* with the
/// [`RouterConfig::poll_interval`] read timeout (multi-line responses are
/// written with plain `write_all`, which must not fail mid-reply on a
/// slow reader); the poller decides *which* clients are worth reading, so
/// idle clients cost nothing per sweep.
fn front_loop(
    mut front: Poller,
    listener: TcpListener,
    mut wakeup_rx: TcpStream,
    inner: Arc<RouterInner>,
) {
    let mut clients: Vec<Option<FrontClient>> = Vec::new();
    let mut free_slots: Vec<usize> = Vec::new();
    let mut events: Vec<poller::Event> = Vec::new();
    let mut touched: HashSet<usize> = HashSet::new();
    while !inner.stop.load(Ordering::SeqCst) {
        // While any client owes a shard-side response, the wait ticks at
        // the poll interval so shard replies (which are not registered
        // with the poller) are polled promptly; otherwise nothing can
        // come due without readiness, and a long backstop suffices.
        let waiting = clients.iter().flatten().any(|c| !c.expects.is_empty());
        let timeout = if waiting {
            inner.config.poll_interval.max(Duration::from_micros(1))
        } else {
            FRONT_IDLE_PARK
        };
        let _ = front.wait(&mut events, Some(timeout));
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        touched.clear();
        for event in &events {
            match event.token {
                FRONT_WAKEUP => drain_wakeup(&mut wakeup_rx),
                FRONT_LISTENER => {
                    accept_clients(&mut front, &listener, &inner, &mut clients, &mut free_slots)
                }
                token => {
                    touched.insert(token - FRONT_BASE);
                }
            }
        }
        // Step every client with something actionable: flagged readable
        // by the poller, holding buffered bytes, or owing responses that
        // may have come due on its shard connections.
        for index in 0..clients.len() {
            let actionable = match &clients[index] {
                Some(client) => {
                    touched.contains(&index)
                        || !client.expects.is_empty()
                        || !client.conn.buf.is_empty()
                        || client.eof
                }
                None => false,
            };
            if actionable {
                let readable = touched.contains(&index);
                step_client(
                    &inner,
                    &mut front,
                    &mut clients,
                    &mut free_slots,
                    index,
                    readable,
                );
            }
        }
    }
    // Deterministic teardown: every open client gets a final protocol
    // error, exactly as the per-connection handlers used to send.
    for client in clients.iter_mut().flatten() {
        let _ = client.conn.send("ERR service is shut down");
    }
}

/// Accepts every ready client connection and registers it with the front
/// poller under a slab slot.
fn accept_clients(
    front: &mut Poller,
    listener: &TcpListener,
    inner: &Arc<RouterInner>,
    clients: &mut Vec<Option<FrontClient>>,
    free_slots: &mut Vec<usize>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let Ok(conn) = LineConn::new(stream, inner.config.poll_interval) else {
                    continue;
                };
                let slot = free_slots.pop().unwrap_or_else(|| {
                    clients.push(None);
                    clients.len() - 1
                });
                if front
                    .register(
                        poller::source(&conn.stream),
                        FRONT_BASE + slot,
                        Interest::READ,
                    )
                    .is_err()
                {
                    free_slots.push(slot);
                    continue;
                }
                clients[slot] = Some(FrontClient {
                    conn,
                    ctx: inner.tracer.mint_context(),
                    pool: ConnPool::default(),
                    expects: VecDeque::new(),
                    discarding: false,
                    eof: false,
                    interest: Interest::READ,
                });
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// One scheduling step for one client: parse and dispatch what it sent
/// (pipelining: every parsed request is forwarded before earlier
/// responses are read back, under the same backpressure rule as the
/// reactor), resolve the head of its pipeline as far as it goes, then
/// settle its poller registration — or reap it on QUIT/EOF/death.
fn step_client(
    inner: &Arc<RouterInner>,
    front: &mut Poller,
    clients: &mut [Option<FrontClient>],
    free_slots: &mut Vec<usize>,
    index: usize,
    readable: bool,
) {
    let client = clients[index].as_mut().expect("stepped slot is live");
    let mut closed = false;
    // The read phase runs only when the poller flagged the socket (or
    // lines are already buffered): a client merely waiting on shard
    // responses must not pay a blocking read timeout per tick. Lines are
    // parsed one at a time with a resolve pass between them — a pipelined
    // ticket verb (`WAIT 1` right behind `SUBMIT …`) must observe the
    // ticket mappings that resolving its predecessor's response creates —
    // and the step is capped so one firehose client cannot monopolise the
    // front thread.
    let mut budget = inner.config.max_pipelined.max(1);
    while (readable || !client.conn.buf.is_empty())
        && !closed
        && !client.eof
        && budget > 0
        && client.expects.len() < inner.config.max_pipelined
    {
        budget -= 1;
        match client.conn.poll_line() {
            Polled::Line(line) => {
                if client.discarding {
                    client.discarding = false;
                } else if line.len() > inner.config.max_line_len {
                    client.expects.push_back(Expect::Local(format!(
                        "ERR line too long (max {} bytes)",
                        inner.config.max_line_len
                    )));
                } else {
                    let expect = route_request(inner, &mut client.pool, client.ctx, &line);
                    client.expects.push_back(expect);
                }
            }
            Polled::Pending => {
                // An oversized partial line is rejected eagerly and
                // discarded through its eventual terminator.
                if !client.discarding && client.conn.buf.len() > inner.config.max_line_len {
                    client.discarding = true;
                    client.conn.buf.clear();
                    client.expects.push_back(Expect::Local(format!(
                        "ERR line too long (max {} bytes)",
                        inner.config.max_line_len
                    )));
                }
                break;
            }
            Polled::Eof => {
                client.eof = true;
                break;
            }
            Polled::Dead => {
                closed = true;
                break;
            }
        }
        match resolve_head(
            inner,
            &mut client.pool,
            client.ctx,
            &mut client.expects,
            &mut client.conn,
        ) {
            ClientState::Open => {}
            ClientState::Closed => {
                closed = true;
                break;
            }
        }
    }
    if !closed {
        match resolve_head(
            inner,
            &mut client.pool,
            client.ctx,
            &mut client.expects,
            &mut client.conn,
        ) {
            ClientState::Open => {}
            ClientState::Closed => closed = true,
        }
    }
    if closed || (client.eof && client.expects.is_empty()) {
        let _ = front.deregister(poller::source(&client.conn.stream));
        clients[index] = None;
        free_slots.push(index);
        return;
    }
    // Backpressure mirror of the reactor: while the pipeline is at max
    // depth (or after EOF), drop read interest so level-triggered
    // readiness does not spin on bytes this step refuses to parse.
    let want = Interest {
        read: !client.eof && client.expects.len() < inner.config.max_pipelined,
        write: false,
    };
    if want != client.interest
        && front
            .reregister(
                poller::source(&client.conn.stream),
                FRONT_BASE + index,
                want,
            )
            .is_ok()
    {
        client.interest = want;
    }
}

enum ClientState {
    Open,
    Closed,
}

/// Classifies and forwards one request, returning the expectation that
/// will produce its response. `conn` is the connection's trace context:
/// every forwarded line is prefixed with `CTX <hex>` carrying a fresh
/// child of it (or of the submitting trace, for ticket verbs).
fn route_request(
    inner: &Arc<RouterInner>,
    pool: &mut ConnPool,
    conn: TraceContext,
    line: &str,
) -> Expect {
    let trimmed = line.trim();
    let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (trimmed, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "PING" => Expect::Local("PONG".into()),
        "LIST" => {
            let mut out = String::from("SCENARIOS");
            for name in inner.spec.scenario_names() {
                out.push(' ');
                out.push_str(name);
            }
            Expect::Local(out)
        }
        "SHARDS" => {
            let topology = inner.lock_topology();
            let mut shards: Vec<&ShardState> = topology.shards.iter().collect();
            shards.sort_by(|a, b| a.name.cmp(&b.name));
            let mut out = format!("SHARDS {}", shards.len());
            for shard in shards {
                let owned = inner
                    .spec
                    .namespaces()
                    .iter()
                    .filter(|ns| topology.map.owner_of_namespace(ns) == Some(shard.name.as_str()))
                    .count();
                out.push_str(&format!(
                    "\nSHARD {} addr={} namespaces={owned}",
                    shard.name, shard.addr
                ));
            }
            Expect::Local(out)
        }
        "SUBMIT" if !rest.is_empty() => {
            let Some(namespace) = inner.spec.namespace_of(rest).map(str::to_string) else {
                return Expect::Local(format!("ERR unknown scenario {rest:?}"));
            };
            let owners: Vec<String> = inner
                .lock_topology()
                .map
                .owners_of_namespace(&namespace, inner.k())
                .iter()
                .map(|s| s.to_string())
                .collect();
            let Some(primary) = owners.first().cloned() else {
                return Expect::Local("ERR cluster has no shards".into());
            };
            // Highest-ranked live owner first; when every owner is down,
            // still try the primary so the client gets a concrete error.
            let mut candidates: Vec<String> = owners
                .iter()
                .filter(|o| !inner.shard_down(o))
                .cloned()
                .collect();
            if candidates.is_empty() {
                candidates.push(primary.clone());
            }
            // One `forward` span per submission; its id becomes the
            // parent of every span the shard records for this request.
            let child = inner.tracer.child_context(conn);
            let mut last_err = None;
            for owner in candidates {
                match forward(inner, pool, &owner, &with_ctx(child, trimmed)) {
                    Ok(epoch) => {
                        let degraded = owner != primary;
                        if degraded {
                            inner.count_failover(&primary);
                        }
                        inner.mark_dirty(&namespace);
                        return Expect::Forward {
                            shard: owner,
                            epoch,
                            rewrite: Rewrite::Submit {
                                scenario: rest.to_string(),
                                degraded,
                                ctx: child,
                            },
                            sent: Instant::now(),
                            request: trimmed.to_string(),
                            retries_left: 1,
                            trace: child,
                        };
                    }
                    Err(err) => last_err = Some(err),
                }
            }
            Expect::Local(last_err.unwrap_or_else(|| "ERR cluster has no shards".into()))
        }
        "POLL" | "RESULT" => {
            let upper = verb.to_ascii_uppercase();
            let Ok(global) = rest.parse::<u64>() else {
                return Expect::Local(if upper == "POLL" {
                    "ERR POLL expects a numeric ticket".into()
                } else {
                    "ERR RESULT expects a numeric ticket".into()
                });
            };
            let Some(mut entry) = inner.lock_tickets().lookup(global) else {
                return Expect::Local(format!("ERR unknown ticket {global}"));
            };
            let rewrite = |upper: &str| {
                if upper == "POLL" {
                    Rewrite::TicketErr { global }
                } else {
                    Rewrite::Result { global }
                }
            };
            // A ticket homed on a declared-dead shard is re-homed onto a
            // warm replica *before* forwarding.
            if inner.shard_down(&entry.shard) {
                match inner.failover_ticket(global, &entry) {
                    Ok(rehomed) => entry = rehomed,
                    Err(line) => return Expect::Local(line),
                }
            }
            // Ticket verbs ride on the *submitting* trace, not the
            // connection's: the poll round-trip shows up on the same
            // EXPLAIN timeline as the submission it asks about.
            let ticket_trace = |trace: u64| {
                inner.tracer.child_context(TraceContext {
                    trace_id: trace,
                    span_id: 0,
                    parent_id: 0,
                })
            };
            let child = ticket_trace(entry.trace);
            match forward(
                inner,
                pool,
                &entry.shard,
                &with_ctx(child, &format!("{upper} {}", entry.local)),
            ) {
                Ok(epoch) => Expect::Forward {
                    shard: entry.shard.clone(),
                    epoch,
                    rewrite: rewrite(&upper),
                    sent: Instant::now(),
                    request: trimmed.to_string(),
                    retries_left: 1,
                    trace: child,
                },
                Err(err) => match inner.failover_ticket(global, &entry) {
                    // The forward just failed — maybe the shard died
                    // between heartbeats. One immediate failover attempt.
                    Ok(rehomed) => {
                        let retry = ticket_trace(rehomed.trace);
                        match forward(
                            inner,
                            pool,
                            &rehomed.shard,
                            &with_ctx(retry, &format!("{upper} {}", rehomed.local)),
                        ) {
                            Ok(epoch) => Expect::Forward {
                                shard: rehomed.shard.clone(),
                                epoch,
                                rewrite: rewrite(&upper),
                                sent: Instant::now(),
                                request: trimmed.to_string(),
                                retries_left: 1,
                                trace: retry,
                            },
                            Err(err2) => Expect::Local(err2),
                        }
                    }
                    Err(_) => Expect::Local(err),
                },
            }
        }
        "RUN" => fan_out(inner, pool, conn, FanKind::Run { total: 0 }, |_| {
            "RUN".into()
        }),
        "METRICS" => gather(inner, pool, conn, GatherKind::Metrics, "METRICS"),
        "TRACE"
            if rest
                .split_whitespace()
                .next()
                .is_some_and(|t| t.eq_ignore_ascii_case("DUMP")) =>
        {
            let count = rest.split_whitespace().nth(1);
            if count.is_some_and(|t| t.parse::<u64>().is_ok()) {
                // Each shard returns up to <n> spans; the merged dump may
                // carry up to <n> per shard (documented in the protocol).
                gather(inner, pool, conn, GatherKind::Trace, trimmed)
            } else {
                Expect::Local("ERR TRACE DUMP expects a numeric span count".into())
            }
        }
        "TRACE"
            if rest
                .split_whitespace()
                .next()
                .is_some_and(|t| t.eq_ignore_ascii_case("SLOW")) =>
        {
            let count = rest.split_whitespace().nth(1);
            if count.is_some_and(|t| t.parse::<u64>().is_ok()) {
                // Each shard returns up to <n> slow traces; the merge
                // keeps them all, slowest first.
                gather(inner, pool, conn, GatherKind::Slow, trimmed)
            } else {
                Expect::Local("ERR TRACE SLOW expects a numeric trace count".into())
            }
        }
        "EXPLAIN" if !rest.is_empty() => {
            let mut tokens = rest.split_whitespace();
            let first = tokens.next().expect("rest is non-empty");
            let trace = if first.eq_ignore_ascii_case("TRACE") {
                match tokens
                    .next()
                    .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                {
                    Some(trace) => trace,
                    None => {
                        return Expect::Local("ERR EXPLAIN TRACE expects a hex trace id".into())
                    }
                }
            } else if let Ok(global) = first.parse::<u64>() {
                match inner.lock_tickets().lookup(global) {
                    Some(entry) => entry.trace,
                    None => return Expect::Local(format!("ERR unknown ticket {global}")),
                }
            } else {
                return Expect::Local("ERR EXPLAIN expects a ticket or TRACE <trace-id>".into());
            };
            gather(
                inner,
                pool,
                conn,
                GatherKind::Explain { trace },
                &format!("EXPLAIN TRACE {trace:016x}"),
            )
        }
        "EXPLAIN" => Expect::Local("ERR EXPLAIN expects a ticket or TRACE <trace-id>".into()),
        "STATS" => fan_out(inner, pool, conn, FanKind::Stats { sums: [0; 8] }, |_| {
            "STATS".into()
        }),
        "SNAPSHOT" if !rest.is_empty() => {
            let base = rest.to_string();
            let render_base = base.clone();
            fan_out(
                inner,
                pool,
                conn,
                FanKind::Snapshot {
                    total: 0,
                    base,
                    written: Vec::new(),
                },
                move |shard| format!("SNAPSHOT {render_base}.{shard}"),
            )
        }
        "WAIT" => {
            if rest.is_empty() {
                return Expect::Local("ERR WAIT expects one or more numeric tickets".into());
            }
            let mut globals = Vec::new();
            for token in rest.split_whitespace() {
                match token.parse::<u64>() {
                    Ok(id) => globals.push(id),
                    Err(_) => {
                        return Expect::Local("ERR WAIT expects one or more numeric tickets".into())
                    }
                }
            }
            let mut pre = Vec::new();
            let mut per_shard: Vec<(String, Vec<(u64, u64)>)> = Vec::new();
            for global in globals {
                let entry = inner.lock_tickets().lookup(global);
                match entry {
                    None => pre.push(format!("ERR unknown ticket {global}")),
                    Some(mut entry) => {
                        if inner.shard_down(&entry.shard) {
                            match inner.failover_ticket(global, &entry) {
                                Ok(rehomed) => entry = rehomed,
                                Err(line) => {
                                    pre.push(line);
                                    continue;
                                }
                            }
                        }
                        match per_shard.iter_mut().find(|(s, _)| *s == entry.shard) {
                            Some((_, items)) => items.push((global, entry.local)),
                            None => per_shard.push((entry.shard, vec![(global, entry.local)])),
                        }
                    }
                }
            }
            let mut parts = Vec::new();
            for (shard, items) in per_shard {
                let locals_line = items
                    .iter()
                    .map(|(_, local)| local.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                match forward(
                    inner,
                    pool,
                    &shard,
                    &with_ctx(
                        inner.tracer.child_context(conn),
                        &format!("WAIT {locals_line}"),
                    ),
                ) {
                    Ok(epoch) => parts.push(WaitPart {
                        shard,
                        epoch,
                        globals: items.iter().map(|(global, _)| *global).collect(),
                    }),
                    Err(err) => {
                        for _ in &items {
                            pre.push(err.clone());
                        }
                    }
                }
            }
            Expect::Wait { pre, parts }
        }
        "QUIT" => Expect::Quit,
        _ => Expect::Local(format!("ERR unknown command {verb:?}")),
    }
}

/// Forwards `line` to every shard (lines derived per shard by `render`),
/// returning the folding expectation. `RUN` and `STATS` degrade — an
/// unreachable shard is skipped and reported in the `degraded=` suffix —
/// while `SNAPSHOT` keeps all-or-nothing semantics (a partial cluster
/// snapshot is worse than none).
fn fan_out(
    inner: &Arc<RouterInner>,
    pool: &mut ConnPool,
    conn: TraceContext,
    kind: FanKind,
    render: impl Fn(&str) -> String,
) -> Expect {
    let shards: Vec<String> = inner.lock_topology().map.shards().to_vec();
    if shards.is_empty() {
        return Expect::Local("ERR cluster has no shards".into());
    }
    let degrade = !matches!(kind, FanKind::Snapshot { .. });
    let mut pending = Vec::new();
    let mut error = None;
    let mut skipped = Vec::new();
    for shard in shards {
        let line = with_ctx(inner.tracer.child_context(conn), &render(&shard));
        match forward(inner, pool, &shard, &line) {
            Ok(epoch) => pending.push((shard, epoch)),
            Err(err) => {
                error.get_or_insert(err);
                if degrade {
                    skipped.push(shard);
                }
            }
        }
    }
    if pending.is_empty() {
        return Expect::Local(error.unwrap_or_else(|| "ERR cluster has no shards".into()));
    }
    if degrade {
        error = None;
    }
    Expect::FanOut {
        kind,
        pending,
        error,
        skipped,
    }
}

/// Forwards a counted multi-line verb (`METRICS` / `TRACE DUMP`) to every
/// shard, returning the merging expectation. A shard that cannot even be
/// reached starts out failed; the merge policy per failure lives in
/// [`GatherKind`].
fn gather(
    inner: &Arc<RouterInner>,
    pool: &mut ConnPool,
    conn: TraceContext,
    kind: GatherKind,
    line: &str,
) -> Expect {
    let shards: Vec<String> = inner.lock_topology().map.shards().to_vec();
    if shards.is_empty() {
        return Expect::Local("ERR cluster has no shards".into());
    }
    let mut parts = Vec::new();
    for shard in shards {
        let prefixed = with_ctx(inner.tracer.child_context(conn), line);
        let part = match forward(inner, pool, &shard, &prefixed) {
            Ok(epoch) => GatherPart {
                shard,
                epoch,
                remaining: None,
                lines: Vec::new(),
                failed: None,
            },
            Err(err) => GatherPart {
                shard,
                epoch: 0,
                remaining: None,
                lines: Vec::new(),
                failed: Some(err),
            },
        };
        parts.push(part);
    }
    Expect::Gather { kind, parts }
}

/// The ` degraded=<shards>` suffix appended to degraded `RUN`/`STATS`
/// replies: the union of shards skipped by this fan-out and shards the
/// heartbeat currently declares dead, sorted and comma-joined. Empty when
/// the cluster is healthy.
fn degraded_suffix(inner: &Arc<RouterInner>, skipped: &[String]) -> String {
    let mut names = inner.degraded_shards();
    for shard in skipped {
        if !names.contains(shard) {
            names.push(shard.clone());
        }
    }
    if names.is_empty() {
        return String::new();
    }
    names.sort();
    format!(" degraded={}", names.join(","))
}

/// Injects `shard="<name>"` as the *first* label of a Prometheus sample
/// line (`name{a="b"} v` or `name v`). Comment lines are never passed
/// here; the registry never renders an empty `{}` block.
fn inject_shard_label(line: &str, shard: &str) -> String {
    match line.find('{') {
        Some(brace) if line.find(' ').is_none_or(|space| brace < space) => {
            format!(
                "{}{{shard=\"{}\",{}",
                &line[..brace],
                shard,
                &line[brace + 1..]
            )
        }
        _ => match line.split_once(' ') {
            Some((name, rest)) => format!("{name}{{shard=\"{shard}\"}} {rest}"),
            None => line.to_string(),
        },
    }
}

/// Merges the completed parts of a `METRICS` / `TRACE DUMP` gather into
/// one counted multi-line reply.
fn render_gather(inner: &Arc<RouterInner>, kind: GatherKind, parts: &[GatherPart]) -> String {
    match kind {
        GatherKind::Metrics => {
            // Router-own families first (already carry their own labels;
            // `router_*` names cannot collide with shard-side families),
            // then each shard's exposition relabeled. `# HELP` / `# TYPE`
            // comments repeat per shard — keep the first occurrence.
            let mut out = Vec::new();
            let mut seen_comments: HashSet<String> = HashSet::new();
            for line in inner.metrics.render() {
                if line.starts_with('#') {
                    seen_comments.insert(line.clone());
                }
                out.push(line);
            }
            for part in parts {
                if let Some(reason) = &part.failed {
                    // A dead shard must not kill the scrape — that is
                    // exactly when monitoring matters. Degrade to a
                    // comment so the gap is visible in the exposition.
                    out.push(format!("# shard {} unavailable: {reason}", part.shard));
                    continue;
                }
                for line in &part.lines {
                    if line.starts_with('#') {
                        if seen_comments.insert(line.clone()) {
                            out.push(line.clone());
                        }
                    } else {
                        out.push(inject_shard_label(line, &part.shard));
                    }
                }
            }
            for shard in inner.degraded_shards() {
                out.push(format!(
                    "# shard {shard} degraded: declared dead by heartbeat; replicas serving"
                ));
            }
            let mut reply = format!("METRICS {}", out.len());
            for line in out {
                reply.push('\n');
                reply.push_str(&line);
            }
            reply
        }
        GatherKind::Trace => {
            if let Some(part) = parts.iter().find(|p| p.failed.is_some()) {
                return part.failed.clone().expect("found a failed part");
            }
            let mut out = Vec::new();
            for part in parts {
                for line in &part.lines {
                    out.push(format!("{line} shard={}", part.shard));
                }
            }
            let mut reply = format!("SPANS {}", out.len());
            for line in out {
                reply.push('\n');
                reply.push_str(&line);
            }
            reply
        }
        GatherKind::Explain { trace } => {
            if let Some(part) = parts.iter().find(|p| p.failed.is_some()) {
                // A partial timeline silently lies about where the time
                // went — fail the whole EXPLAIN instead.
                return part.failed.clone().expect("found a failed part");
            }
            let mut out = Vec::new();
            for part in parts {
                for line in &part.lines {
                    out.push(format!("{line} shard={}", part.shard));
                }
            }
            // The router contributes its own spans for the trace — the
            // `forward` round-trips that parent each shard's spans.
            let anchor = inner.tracer.wall_anchor_us();
            for span in inner.tracer.trace_spans(trace) {
                out.push(format!(
                    "{} shard=router",
                    crate::net::render_event(anchor, &span)
                ));
            }
            // Wall-clock anchoring makes start times comparable across
            // processes; the stable sort keeps intra-process order for
            // ties.
            out.sort_by_key(|line| field_of(line, "start_us="));
            let mut reply = format!("TIMELINE {}", out.len());
            for line in out {
                reply.push('\n');
                reply.push_str(&line);
            }
            reply
        }
        GatherKind::Slow => {
            if let Some(part) = parts.iter().find(|p| p.failed.is_some()) {
                return part.failed.clone().expect("found a failed part");
            }
            let mut out = Vec::new();
            for part in parts {
                for line in &part.lines {
                    out.push(format!("{line} shard={}", part.shard));
                }
            }
            out.sort_by_key(|line| std::cmp::Reverse(field_of(line, "dur_us=")));
            let mut reply = format!("SLOW {}", out.len());
            for line in out {
                reply.push('\n');
                reply.push_str(&line);
            }
            reply
        }
    }
}

/// Prefixes `line` with the `CTX <hex>` wire header when `ctx` carries a
/// real trace, and leaves it untouched otherwise — a shard that never
/// sees the prefix behaves exactly as it did before the tracing upgrade.
fn with_ctx(ctx: TraceContext, line: &str) -> String {
    if ctx.trace_id == 0 {
        return line.to_string();
    }
    format!("CTX {} {line}", ctx.encode())
}

/// Extracts the numeric value of the `<key><value>` token (e.g.
/// `start_us=173…`) from a rendered timeline or slow-trace line, or 0
/// when absent — the merge sort keys of [`render_gather`].
fn field_of(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(key))
        .and_then(|value| value.parse().ok())
        .unwrap_or(0)
}

/// Sends one line to `shard`, (re)connecting as needed with bounded
/// jittered-backoff retries, gated by the shard's circuit breaker (an
/// open circuit fails fast without touching the socket). Returns the
/// epoch of the connection the line went out on — the expectation must
/// read its response from that epoch only. The error value is a
/// ready-to-emit protocol line.
fn forward(
    inner: &Arc<RouterInner>,
    pool: &mut ConnPool,
    shard: &str,
    line: &str,
) -> Result<u64, String> {
    let unavailable = |reason: &str| format!("ERR shard {shard} unavailable ({reason})");
    let Some(addr) = inner.lock_topology().addr_of(shard) else {
        return Err(unavailable("not a member"));
    };
    // A rewired shard invalidates the cached connection.
    if pool.conns.get(shard).is_some_and(|c| c.addr != addr) {
        pool.conns.remove(shard);
        inner.reconnects.inc();
    }
    let attempts = inner.config.forward_attempts.max(1);
    let mut rng = jitter_rng();
    let mut last_err = String::from("no attempt allowed");
    for attempt in 0..attempts {
        if !inner.allow_attempt(shard) {
            return Err(unavailable("circuit open"));
        }
        if attempt > 0 {
            let delay = backoff_delay(&inner.config, attempt, &mut rng);
            inner
                .metrics
                .histogram_with("router_backoff_ms", BACKOFF_HELP, &[("shard", shard)])
                .record(delay.as_millis() as u64);
            std::thread::sleep(delay);
        }
        if !pool.conns.contains_key(shard) {
            let connected = TcpStream::connect_timeout(&addr, inner.config.connect_timeout)
                .and_then(|stream| LineConn::new(stream, inner.config.poll_interval));
            match connected {
                Ok(conn) => {
                    pool.next_epoch += 1;
                    pool.conns.insert(
                        shard.to_string(),
                        ShardConn {
                            conn,
                            addr,
                            epoch: pool.next_epoch,
                        },
                    );
                }
                Err(err) => {
                    inner.note_failure(shard, false);
                    last_err = err.to_string();
                    continue;
                }
            }
        }
        let entry = pool.conns.get_mut(shard).expect("inserted above");
        let epoch = entry.epoch;
        match entry.conn.send(line) {
            Ok(()) => return Ok(epoch),
            Err(err) => {
                // A stale pooled connection (shard restarted) fails here.
                // Dropping it retires its epoch: responses still owed on
                // it resolve to "shard unavailable" instead of consuming
                // this request's reply off the fresh connection — which
                // makes the clean retry safe.
                pool.conns.remove(shard);
                inner.reconnects.inc();
                inner.note_failure(shard, false);
                last_err = err.to_string();
            }
        }
    }
    Err(unavailable(&last_err))
}

/// Reads one response line owed by `shard` on the connection with the
/// given `epoch`. A missing, retired (epoch mismatch) or rewired
/// connection means the response is lost — never read a newer
/// connection's lines for an older request.
fn poll_shard(inner: &Arc<RouterInner>, pool: &mut ConnPool, shard: &str, epoch: u64) -> Polled {
    let current_addr = inner.lock_topology().addr_of(shard);
    let Some(entry) = pool.conns.get_mut(shard) else {
        return Polled::Dead;
    };
    if entry.epoch != epoch {
        // The connection this response was owed on is gone; the current
        // one carries other requests' replies.
        return Polled::Dead;
    }
    if current_addr != Some(entry.addr) {
        // Rewired mid-flight: the old process (and the response) is gone.
        pool.conns.remove(shard);
        return Polled::Dead;
    }
    match entry.conn.poll_line() {
        Polled::Line(line) => Polled::Line(line),
        Polled::Pending => Polled::Pending,
        Polled::Eof | Polled::Dead => {
            pool.conns.remove(shard);
            Polled::Dead
        }
    }
}

/// Resolves as many leading expectations as currently possible, writing
/// response lines to the client in order.
fn resolve_head(
    inner: &Arc<RouterInner>,
    pool: &mut ConnPool,
    conn: TraceContext,
    expects: &mut VecDeque<Expect>,
    client: &mut LineConn,
) -> ClientState {
    loop {
        let Some(head) = expects.front_mut() else {
            return ClientState::Open;
        };
        match head {
            Expect::Local(_) => {
                let Some(Expect::Local(text)) = expects.pop_front() else {
                    unreachable!("front matched Local");
                };
                if client.send(&text).is_err() {
                    return ClientState::Closed;
                }
            }
            Expect::Quit => {
                let _ = client.send("BYE");
                return ClientState::Closed;
            }
            Expect::Forward {
                shard,
                epoch,
                rewrite,
                sent,
                request,
                retries_left,
                trace,
            } => {
                let shard_name = shard.clone();
                let sent_at = *sent;
                let trace = *trace;
                match poll_shard(inner, pool, &shard_name, *epoch) {
                    Polled::Line(line) => {
                        inner
                            .metrics
                            .histogram_with(
                                "router_forward_us",
                                "Round-trip latency of single-shard forwards \
                                 (SUBMIT/POLL/RESULT), router-side, in microseconds.",
                                &[("shard", &shard_name)],
                            )
                            .record_duration(sent_at.elapsed());
                        if trace.trace_id != 0 {
                            // Recorded with the context it was *sent*
                            // under, so this span's id is the parent the
                            // shard stitched its own spans to.
                            inner
                                .tracer
                                .record_at("forward", trace, sent_at, sent_at.elapsed());
                        }
                        let reply = apply_rewrite(inner, &shard_name, rewrite, &line);
                        expects.pop_front();
                        if client.send(&reply).is_err() {
                            return ClientState::Closed;
                        }
                    }
                    Polled::Pending => return ClientState::Open,
                    Polled::Eof | Polled::Dead => {
                        // The connection died with the response owed. Burn
                        // one re-dispatch: route_request re-resolves
                        // ownership (and ticket failover) from scratch, so
                        // the retry lands on a replica when one exists.
                        inner.note_failure(&shard_name, false);
                        let retries = *retries_left;
                        let request = request.clone();
                        expects.pop_front();
                        if retries > 0 {
                            let mut replacement = route_request(inner, pool, conn, &request);
                            if let Expect::Forward { retries_left, .. } = &mut replacement {
                                *retries_left = retries - 1;
                            }
                            expects.push_front(replacement);
                            continue;
                        }
                        let reply = format!("ERR shard {shard_name} unavailable (connection lost)");
                        if client.send(&reply).is_err() {
                            return ClientState::Closed;
                        }
                    }
                }
            }
            Expect::FanOut {
                kind,
                pending,
                error,
                skipped,
            } => {
                let degrade = !matches!(kind, FanKind::Snapshot { .. });
                let mut progressed = true;
                while progressed && !pending.is_empty() {
                    progressed = false;
                    let mut index = 0;
                    while index < pending.len() {
                        let (shard, epoch) = pending[index].clone();
                        match poll_shard(inner, pool, &shard, epoch) {
                            Polled::Line(line) => {
                                fold_fan_line(kind, error, &shard, &line);
                                pending.remove(index);
                                progressed = true;
                            }
                            Polled::Pending => index += 1,
                            Polled::Eof | Polled::Dead => {
                                inner.note_failure(&shard, false);
                                if degrade {
                                    skipped.push(shard.clone());
                                } else {
                                    error.get_or_insert_with(|| {
                                        format!("ERR shard {shard} unavailable (connection lost)")
                                    });
                                }
                                pending.remove(index);
                                progressed = true;
                            }
                        }
                    }
                }
                if !pending.is_empty() {
                    return ClientState::Open;
                }
                let reply = match (&mut *kind, error.take()) {
                    (FanKind::Snapshot { base, written, .. }, Some(err)) => {
                        // A failed fan-out must not leave partial
                        // per-shard files behind: remove what was written.
                        for shard in written.drain(..) {
                            let _ = std::fs::remove_file(format!("{base}.{shard}"));
                        }
                        err
                    }
                    (_, Some(err)) => err,
                    (FanKind::Run { total }, None) => {
                        // The cluster's queues drained: replica caches can
                        // be refreshed on the next flush.
                        inner.promote_dirty();
                        format!("OK {total}{}", degraded_suffix(inner, skipped))
                    }
                    (FanKind::Snapshot { total, .. }, None) => format!("OK {total}"),
                    (FanKind::Stats { sums }, None) => {
                        let shard_count = inner.lock_topology().map.len();
                        let mut out = String::from("STATS");
                        for (key, value) in STAT_KEYS.iter().zip(sums) {
                            out.push_str(&format!(" {key}={value}"));
                        }
                        out.push_str(&format!(" cluster_shards={shard_count}"));
                        out.push_str(&degraded_suffix(inner, skipped));
                        out
                    }
                };
                expects.pop_front();
                if client.send(&reply).is_err() {
                    return ClientState::Closed;
                }
            }
            Expect::Wait { pre, parts } => {
                for line in pre.drain(..) {
                    if client.send(&line).is_err() {
                        return ClientState::Closed;
                    }
                }
                let mut any_pending = false;
                let mut i = 0;
                while i < parts.len() {
                    while !parts[i].globals.is_empty() {
                        let shard = parts[i].shard.clone();
                        let epoch = parts[i].epoch;
                        match poll_shard(inner, pool, &shard, epoch) {
                            Polled::Line(line) => {
                                let (reply, resolved) = rewrite_wait_line(inner, &shard, &line);
                                let part = &mut parts[i];
                                match resolved
                                    .and_then(|g| part.globals.iter().position(|x| *x == g))
                                {
                                    Some(pos) => {
                                        part.globals.remove(pos);
                                    }
                                    None => {
                                        // A line we cannot attribute
                                        // (e.g. a shard-side error)
                                        // consumes one owed slot.
                                        part.globals.remove(0);
                                    }
                                }
                                if client.send(&reply).is_err() {
                                    return ClientState::Closed;
                                }
                            }
                            Polled::Pending => {
                                any_pending = true;
                                break;
                            }
                            Polled::Eof | Polled::Dead => {
                                // The shard died mid-WAIT: re-home every
                                // still-owed ticket on a live replica and
                                // resume waiting there.
                                inner.note_failure(&shard, false);
                                let orphans: Vec<u64> = std::mem::take(&mut parts[i].globals);
                                let mut regroup: Vec<(String, Vec<(u64, u64)>)> = Vec::new();
                                for global in orphans {
                                    let entry = inner.lock_tickets().lookup(global);
                                    let failure = match entry {
                                        Some(entry) => {
                                            match inner.failover_ticket(global, &entry) {
                                                Ok(rehomed) => {
                                                    match regroup
                                                        .iter_mut()
                                                        .find(|(s, _)| *s == rehomed.shard)
                                                    {
                                                        Some((_, items)) => {
                                                            items.push((global, rehomed.local))
                                                        }
                                                        None => regroup.push((
                                                            rehomed.shard.clone(),
                                                            vec![(global, rehomed.local)],
                                                        )),
                                                    }
                                                    None
                                                }
                                                Err(line) => Some(line),
                                            }
                                        }
                                        None => Some(format!("ERR unknown ticket {global}")),
                                    };
                                    if let Some(line) = failure {
                                        if client.send(&line).is_err() {
                                            return ClientState::Closed;
                                        }
                                    }
                                }
                                for (new_shard, items) in regroup {
                                    let locals_line = items
                                        .iter()
                                        .map(|(_, local)| local.to_string())
                                        .collect::<Vec<_>>()
                                        .join(" ");
                                    match forward(
                                        inner,
                                        pool,
                                        &new_shard,
                                        &with_ctx(
                                            inner.tracer.child_context(conn),
                                            &format!("WAIT {locals_line}"),
                                        ),
                                    ) {
                                        Ok(epoch) => parts.push(WaitPart {
                                            shard: new_shard,
                                            epoch,
                                            globals: items
                                                .iter()
                                                .map(|(global, _)| *global)
                                                .collect(),
                                        }),
                                        Err(err) => {
                                            for _ in &items {
                                                if client.send(&err).is_err() {
                                                    return ClientState::Closed;
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    i += 1;
                }
                if any_pending {
                    return ClientState::Open;
                }
                expects.pop_front();
            }
            Expect::Gather { kind, parts } => {
                let kind = *kind;
                let mut progressed = true;
                while progressed {
                    progressed = false;
                    for part in parts.iter_mut() {
                        while !part.done() {
                            match poll_shard(inner, pool, &part.shard, part.epoch) {
                                Polled::Line(line) => {
                                    progressed = true;
                                    match part.remaining {
                                        None => {
                                            // First line: `<HEADER> <n>`
                                            // or a shard-side error.
                                            let count = line
                                                .strip_prefix(kind.header())
                                                .map(str::trim)
                                                .and_then(|n| n.parse::<usize>().ok());
                                            match count {
                                                Some(n) => part.remaining = Some(n),
                                                None => {
                                                    part.failed = Some(format!(
                                                        "ERR shard {}: unexpected reply {line:?}",
                                                        part.shard
                                                    ));
                                                }
                                            }
                                        }
                                        Some(n) => {
                                            part.lines.push(line);
                                            part.remaining = Some(n - 1);
                                        }
                                    }
                                }
                                Polled::Pending => break,
                                Polled::Eof | Polled::Dead => {
                                    part.failed = Some(format!(
                                        "ERR shard {} unavailable (connection lost)",
                                        part.shard
                                    ));
                                }
                            }
                        }
                    }
                }
                if parts.iter().any(|p| !p.done()) {
                    return ClientState::Open;
                }
                let reply = render_gather(inner, kind, parts);
                expects.pop_front();
                if client.send(&reply).is_err() {
                    return ClientState::Closed;
                }
            }
        }
    }
}

/// Applies a single-line response rewrite.
fn apply_rewrite(inner: &Arc<RouterInner>, shard: &str, rewrite: &Rewrite, line: &str) -> String {
    match rewrite {
        Rewrite::Submit {
            scenario,
            degraded,
            ctx,
        } => match line
            .strip_prefix("TICKET ")
            .and_then(|s| s.parse::<u64>().ok())
        {
            Some(local) => {
                let global = inner.lock_tickets().allocate(
                    shard,
                    local,
                    scenario,
                    *degraded,
                    ctx.trace_id,
                    inner.config.max_tickets,
                );
                inner.remaps.inc();
                format!("TICKET {global}")
            }
            None => line.to_string(),
        },
        Rewrite::TicketErr { global } => {
            if line.starts_with("ERR unknown ticket") {
                format!("ERR unknown ticket {global}")
            } else {
                line.to_string()
            }
        }
        Rewrite::Result { global } => {
            if let Some(rest) = line.strip_prefix("RESULT ") {
                // Stand-in service is flagged: the payload is correct
                // (warm replica cache) but served by a non-primary.
                let flag = if inner.lock_tickets().degraded(*global) {
                    format!(" degraded={shard}")
                } else {
                    String::new()
                };
                match rest.split_once(' ') {
                    Some((_, payload)) => format!("RESULT {global} {payload}{flag}"),
                    None => format!("RESULT {global}{flag}"),
                }
            } else if line.starts_with("ERR unknown ticket") {
                format!("ERR unknown ticket {global}")
            } else if line.starts_with("ERR ticket ") {
                // `ERR ticket <local> is not finished` — re-express with
                // the cluster id.
                format!("ERR ticket {global} is not finished")
            } else {
                line.to_string()
            }
        }
    }
}

/// Folds one shard's fan-out response line into the accumulator.
fn fold_fan_line(kind: &mut FanKind, error: &mut Option<String>, shard: &str, line: &str) {
    if line.starts_with("ERR ") {
        error.get_or_insert_with(|| format!("ERR shard {shard}: {}", &line[4..]));
        return;
    }
    match kind {
        FanKind::Run { total } => {
            match line.strip_prefix("OK ").and_then(|s| s.parse::<u64>().ok()) {
                Some(n) => *total += n,
                None => {
                    error.get_or_insert_with(|| {
                        format!("ERR shard {shard}: unexpected reply {line:?}")
                    });
                }
            }
        }
        FanKind::Snapshot { total, written, .. } => {
            match line.strip_prefix("OK ").and_then(|s| s.parse::<u64>().ok()) {
                Some(n) => {
                    *total += n;
                    written.push(shard.to_string());
                }
                None => {
                    error.get_or_insert_with(|| {
                        format!("ERR shard {shard}: unexpected reply {line:?}")
                    });
                }
            }
        }
        FanKind::Stats { sums } => {
            if !line.starts_with("STATS ") {
                error
                    .get_or_insert_with(|| format!("ERR shard {shard}: unexpected reply {line:?}"));
                return;
            }
            for token in line.split_whitespace().skip(1) {
                if let Some((key, value)) = token.split_once('=') {
                    if let (Some(slot), Ok(v)) = (
                        STAT_KEYS.iter().position(|k| *k == key),
                        value.parse::<u64>(),
                    ) {
                        sums[slot] += v;
                    }
                }
            }
        }
    }
}

/// Rewrites one streamed `WAIT` line (`DONE <local> …` or an error) to
/// cluster ticket ids, returning the rewritten line and the cluster id it
/// resolved, when attributable.
fn rewrite_wait_line(inner: &Arc<RouterInner>, shard: &str, line: &str) -> (String, Option<u64>) {
    let translate = |local: u64| inner.lock_tickets().global_for(shard, local);
    if let Some(rest) = line.strip_prefix("DONE ") {
        if let Some((id, payload)) = rest.split_once(' ') {
            if let Some(global) = id.parse::<u64>().ok().and_then(translate) {
                return (format!("DONE {global} {payload}"), Some(global));
            }
        }
    } else if let Some(rest) = line.strip_prefix("ERR unknown ticket ") {
        if let Some(global) = rest.trim().parse::<u64>().ok().and_then(translate) {
            return (format!("ERR unknown ticket {global}"), Some(global));
        }
    }
    (line.to_string(), None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delays_grow_and_stay_inside_the_jitter_window() {
        let config = RouterConfig::default();
        let mut rng = jitter_rng();
        let mut caps = Vec::new();
        for attempt in 1..=8u32 {
            let cap = config
                .backoff_base
                .saturating_mul(1 << (attempt - 1))
                .min(config.backoff_max);
            caps.push(cap);
            for _ in 0..32 {
                let delay = backoff_delay(&config, attempt, &mut rng);
                assert!(delay <= cap, "attempt {attempt}: {delay:?} > cap {cap:?}");
                let floor = Duration::from_micros(cap.as_micros() as u64 / 2);
                assert!(
                    delay >= floor,
                    "attempt {attempt}: {delay:?} < jitter floor {floor:?}"
                );
            }
        }
        // Exponential until the cap, then flat.
        assert!(caps[0] < caps[1] && caps[1] < caps[2]);
        assert_eq!(*caps.last().expect("caps"), config.backoff_max);
    }

    #[test]
    fn circuit_breaker_walks_closed_open_half_open_closed() {
        let mut health = ShardHealth::default();
        assert_eq!(health.state, CircuitState::Closed);
        health.on_failure(3);
        health.on_failure(3);
        assert_eq!(health.state, CircuitState::Closed, "below the threshold");
        health.on_failure(3);
        assert_eq!(health.state, CircuitState::Open, "threshold reached");
        assert!(
            !health.allow_attempt(Duration::from_secs(3600)),
            "open circuit fails fast inside the cooldown"
        );
        assert!(
            health.allow_attempt(Duration::ZERO),
            "cooldown elapsed: one trial goes through"
        );
        assert_eq!(health.state, CircuitState::HalfOpen);
        health.on_failure(3);
        assert_eq!(health.state, CircuitState::Open, "failed trial re-opens");
        assert!(health.allow_attempt(Duration::ZERO));
        health.on_success();
        assert_eq!(
            health.state,
            CircuitState::HalfOpen,
            "one success is not enough to close"
        );
        health.on_success();
        assert_eq!(
            health.state,
            CircuitState::Closed,
            "two consecutive successes close the breaker"
        );
        assert_eq!(health.misses, 0);
    }

    #[test]
    fn ticket_table_remaps_onto_a_replica_and_flags_degraded() {
        let mut table = TicketTable::default();
        let global = table.allocate("a", 7, "scen", false, 0x77, 8);
        assert_eq!(table.global_for("a", 7), Some(global));
        assert!(!table.degraded(global));

        assert!(table.remap(global, "b", 3), "known id remaps");
        let entry = table.lookup(global).expect("remapped entry");
        assert_eq!((entry.shard.as_str(), entry.local), ("b", 3));
        assert_eq!(entry.scenario, "scen");
        assert_eq!(entry.trace, 0x77, "remap keeps the submitting trace");
        assert!(entry.degraded && table.degraded(global));
        assert_eq!(
            table.global_for("a", 7),
            None,
            "the old reverse mapping is gone"
        );
        assert_eq!(table.global_for("b", 3), Some(global));

        table.purge_shard("b");
        assert!(table.lookup(global).is_none());
        assert!(!table.remap(999, "c", 1), "unknown ids do not remap");
    }

    #[test]
    fn hex_decode_round_trips_and_rejects_garbage() {
        assert_eq!(hex_decode(""), Some(Vec::new()));
        assert_eq!(hex_decode("00ff10"), Some(vec![0x00, 0xff, 0x10]));
        assert_eq!(hex_decode("abc"), None, "odd length");
        assert_eq!(hex_decode("zz"), None, "non-hex digit");
    }

    /// The four failover telemetry families render — at zero, with the
    /// shard label — from the moment the router binds, so a scrape never
    /// misses them just because nothing failed yet (satellite: telemetry
    /// for heartbeat misses, failovers, backoff and circuit state).
    #[test]
    fn per_shard_failover_families_render_from_bind() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind responder");
        let addr = listener.local_addr().expect("responder addr");
        // A minimal PING responder so heartbeat probes succeed. The
        // thread parks in accept() and dies with the test process.
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                let mut buf = [0u8; 64];
                let _ = stream.read(&mut buf);
                let _ = stream.write_all(b"PONG\n");
            }
        });
        let spec = ClusterSpec::new([("scen", "ns")]).expect("spec");
        let config = RouterConfig {
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(200),
            ..RouterConfig::default()
        };
        let router = Router::bind_with(spec, vec![("s0".to_string(), addr)], "127.0.0.1:0", config)
            .expect("bind router");
        let lines = router.metrics().render();
        for needle in [
            "router_circuit_state{shard=\"s0\"} 0",
            "router_heartbeat_misses_total{shard=\"s0\"} 0",
            "router_failovers_total{shard=\"s0\"} 0",
            "router_backoff_ms_bucket{shard=\"s0\"",
        ] {
            assert!(
                lines.iter().any(|l| l.starts_with(needle)),
                "family {needle:?} missing from the bind-time exposition:\n{lines:#?}"
            );
        }
        assert_eq!(router.circuit_state("s0"), CircuitState::Closed);
        assert_eq!(router.circuit_state("ghost"), CircuitState::Closed);
        router.stop();
    }
}
