//! The cluster router: one TCP front-end over N shard daemons.
//!
//! A [`Router`] speaks the same line protocol as a single [`crate::Daemon`]
//! and fronts a set of shard daemons (each a reactor-served [`crate::Service`]
//! in its own process), so a client cannot tell a cluster from a single
//! daemon — same verbs, same responses, same pipelining rules:
//!
//! * **Placement** — every scenario maps to a cache namespace
//!   ([`ClusterSpec`]), every namespace to exactly one shard by rendezvous
//!   hashing ([`ShardMap`]); `SUBMIT` goes to the owner, so one
//!   namespace's evaluations always concentrate in one process.
//! * **Pipelining end-to-end** — a client may burst any number of
//!   requests; each is forwarded to its shard *immediately on parse*
//!   (shards work concurrently on one client's pipeline), while responses
//!   are emitted strictly in request order through an ordered queue of
//!   expectations, exactly like the reactor's response slots.
//! * **Ticket remapping** — shards issue process-local ticket ids; the
//!   router allocates cluster-wide ids and translates on every `SUBMIT`
//!   response, `POLL`/`RESULT`/`WAIT` request and streamed `DONE` line.
//! * **Fan-out verbs** — `RUN` drains every shard concurrently and sums
//!   the counts; `STATS` aggregates every shard's counters into one
//!   cluster-wide line (plus a `SHARDS` verb for per-shard telemetry);
//!   `SNAPSHOT <path>` persists every shard to `<path>.<shard>`.
//! * **Cluster-wide observability** — `METRICS` gathers every shard's
//!   exposition, injects a `shard="<name>"` label into each sample line
//!   and prepends the router's own metrics (forward latency per shard,
//!   reconnects, ticket remaps), so one scrape sees the whole cluster;
//!   `TRACE DUMP <n>` merges per-shard span dumps with a `shard=` suffix.
//!   An unreachable shard degrades a `METRICS` scrape to a comment line
//!   (monitoring keeps working while a shard is down) but fails a
//!   `TRACE DUMP` like any other fan-out verb.
//! * **`WAIT` across shards** — the router splits the ticket list per
//!   owning shard, forwards per-shard `WAIT`s, and streams the merged
//!   `DONE` lines back in arrival order (≈ cluster-wide completion
//!   order), rewritten to cluster ids.
//! * **Rebalancing** — [`Router::join_shard`] / [`Router::leave_shard`]
//!   recompute ownership and ship exactly the namespaces that move (a
//!   rendezvous-hash guarantee) as snapshot shipments: `SNAPSHOT
//!   NAMESPACE` on the old owner, `RESTORE` on the new one. A grown
//!   cluster answers its first run of a moved namespace from the shipped
//!   warm cache. Shipping goes through a file path visible to both shard
//!   processes (same host or shared filesystem; a cross-host transfer
//!   would add a copy step between the two verbs).
//! * **Fault handling** — a shard that cannot be reached answers `ERR
//!   shard <name> unavailable …` for the affected requests only; other
//!   shards keep serving. [`Router::set_shard_addr`] rewires a restarted
//!   shard (e.g. revived from its last snapshot via
//!   `Service::from_snapshot`) and invalidates the dead process's
//!   tickets.
//!
//! The router itself holds no evaluation state and does no search work —
//! it is a thin I/O forwarder, so a plain thread-per-connection design is
//! deliberate (the CPU-heavy side, the shard daemons, already runs on the
//! non-blocking reactor; routing hundreds of client connections through
//! one process is the reactor follow-up in the ROADMAP).

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use modis_core::telemetry::{Counter, MetricsRegistry};

use crate::cluster::{validate_token, ClusterSpec, ShardMap};
use crate::error::ServiceError;

/// Tuning knobs of the router. Defaults suit tests and examples; none
/// change protocol semantics.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Read timeout used as the polling quantum on every connection
    /// (client and shard side): bounds how long the handler loop blocks
    /// before re-checking other work and the stop flag.
    pub poll_interval: Duration,
    /// Longest accepted client request line (reactor parity).
    pub max_line_len: usize,
    /// Maximum unresolved expectations per client connection; beyond it
    /// the router stops reading that client (pipelining backpressure).
    pub max_pipelined: usize,
    /// Connect timeout for shard connections.
    pub connect_timeout: Duration,
    /// How long a lifecycle operation (snapshot shipping on join/leave)
    /// waits for one shard reply.
    pub ship_timeout: Duration,
    /// Directory shipment files are staged in during rebalancing
    /// (`None` = the system temp directory). Must be visible to both
    /// shard processes involved, and its path must not contain
    /// whitespace (the shipping verbs are whitespace-delimited lines).
    pub ship_dir: Option<PathBuf>,
    /// How many ticket mappings the router retains (FIFO; 0 = unbounded).
    /// Mirrors the shard daemons' bounded completed-job retention — a
    /// ticket older than either bound answers `ERR unknown ticket`.
    pub max_tickets: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            // Small on purpose: every client⇄router⇄shard exchange pays up
            // to two of these quanta, so the quantum is the router's
            // latency floor. The cost is one read syscall per quantum per
            // open idle connection — cheap at router connection counts
            // (the CPU-heavy side lives in the shard daemons).
            poll_interval: Duration::from_micros(200),
            max_line_len: 4096,
            max_pipelined: 1024,
            connect_timeout: Duration::from_secs(2),
            ship_timeout: Duration::from_secs(120),
            ship_dir: None,
            max_tickets: 1 << 16,
        }
    }
}

/// One shard's identity and current address.
#[derive(Debug, Clone)]
struct ShardState {
    name: String,
    addr: SocketAddr,
}

/// The live topology: shard addresses plus the ownership map, kept under
/// one lock so routing decisions always see a consistent pair.
struct Topology {
    shards: Vec<ShardState>,
    map: ShardMap,
}

impl Topology {
    fn addr_of(&self, name: &str) -> Option<SocketAddr> {
        self.shards.iter().find(|s| s.name == name).map(|s| s.addr)
    }
}

/// Cluster-wide ticket table: router ids ↔ per-shard local ids, retained
/// FIFO up to [`RouterConfig::max_tickets`] (the shard daemons bound their
/// own completed-job retention, so an unbounded router-side table would
/// mostly map ids the shards have already forgotten — and grow with every
/// request the router ever served).
#[derive(Default)]
struct TicketTable {
    next: u64,
    forward: HashMap<u64, (String, u64)>,
    reverse: HashMap<(String, u64), u64>,
    /// Allocation order, for FIFO eviction.
    order: VecDeque<u64>,
}

impl TicketTable {
    fn allocate(&mut self, shard: &str, local: u64, retention: usize) -> u64 {
        self.next += 1;
        let global = self.next;
        self.forward.insert(global, (shard.to_string(), local));
        self.reverse.insert((shard.to_string(), local), global);
        self.order.push_back(global);
        if retention > 0 {
            while self.order.len() > retention {
                if let Some(oldest) = self.order.pop_front() {
                    if let Some(key) = self.forward.remove(&oldest) {
                        self.reverse.remove(&key);
                    }
                }
            }
        }
        global
    }

    fn lookup(&self, global: u64) -> Option<(String, u64)> {
        self.forward.get(&global).cloned()
    }

    fn global_for(&self, shard: &str, local: u64) -> Option<u64> {
        self.reverse.get(&(shard.to_string(), local)).copied()
    }

    /// Drops every mapping of `shard` — its process died (or was
    /// replaced), so its local ids no longer name anything.
    fn purge_shard(&mut self, shard: &str) {
        self.forward.retain(|_, (s, _)| s != shard);
        self.reverse.retain(|(s, _), _| s != shard);
        let forward = &self.forward;
        self.order.retain(|g| forward.contains_key(g));
    }
}

struct RouterInner {
    spec: ClusterSpec,
    topology: Mutex<Topology>,
    tickets: Mutex<TicketTable>,
    stop: AtomicBool,
    config: RouterConfig,
    /// The router's own instruments; rendered (unrelabeled — `router_*`
    /// family names cannot collide with shard-side families) at the head
    /// of every merged `METRICS` reply.
    metrics: Arc<MetricsRegistry>,
    /// Shard connections re-established after a send failure or rewire.
    reconnects: Arc<Counter>,
    /// Shard-local ticket ids remapped to cluster-wide ids.
    remaps: Arc<Counter>,
}

impl RouterInner {
    fn lock_topology(&self) -> std::sync::MutexGuard<'_, Topology> {
        self.topology.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_tickets(&self) -> std::sync::MutexGuard<'_, TicketTable> {
        self.tickets.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// What a rebalancing operation shipped: one entry per moved namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedNamespace {
    /// The namespace that changed owner.
    pub namespace: String,
    /// The shard it moved from.
    pub from: String,
    /// The shard it moved to.
    pub to: String,
}

/// A running cluster router: the bound address, the accept thread and one
/// handler thread per client connection.
pub struct Router {
    inner: Arc<RouterInner>,
    addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Serialises join/leave/rewire so two topology changes cannot
    /// interleave their shipping phases.
    lifecycle: Mutex<()>,
}

impl Router {
    /// Binds the router on `addr` over the given shard daemons (name,
    /// address). Shard names must be non-empty single tokens; at least one
    /// shard is required.
    pub fn bind(
        spec: ClusterSpec,
        shards: Vec<(String, SocketAddr)>,
        addr: &str,
    ) -> io::Result<Router> {
        Router::bind_with(spec, shards, addr, RouterConfig::default())
    }

    /// [`Router::bind`] with explicit tuning.
    pub fn bind_with(
        spec: ClusterSpec,
        shards: Vec<(String, SocketAddr)>,
        addr: &str,
        config: RouterConfig,
    ) -> io::Result<Router> {
        if shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard",
            ));
        }
        let mut map = ShardMap::new();
        let mut states = Vec::new();
        for (name, addr) in shards {
            if let Err(reason) = validate_token(&name, "shard name") {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, reason));
            }
            if !map.add(name.clone()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("shard name {name:?} listed twice"),
                ));
            }
            states.push(ShardState { name, addr });
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(MetricsRegistry::new());
        let reconnects = metrics.counter(
            "router_reconnects_total",
            "Shard connections re-established after a send failure or rewire.",
        );
        let remaps = metrics.counter(
            "router_ticket_remaps_total",
            "Shard-local ticket ids remapped to cluster-wide ids.",
        );
        let inner = Arc::new(RouterInner {
            spec,
            topology: Mutex::new(Topology {
                shards: states,
                map,
            }),
            tickets: Mutex::new(TicketTable::default()),
            stop: AtomicBool::new(false),
            config,
            metrics,
            reconnects,
            remaps,
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let inner = Arc::clone(&inner);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || accept_loop(listener, inner, handlers))
        };
        Ok(Router {
            inner,
            addr,
            accept_thread: Mutex::new(Some(accept_thread)),
            handlers,
            lifecycle: Mutex::new(()),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's own metrics registry (forward latency per shard,
    /// reconnects, ticket remaps). Rendered at the head of every merged
    /// `METRICS` reply; exposed for tests and embedding processes.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.inner.metrics
    }

    /// A snapshot of the current ownership map.
    pub fn shard_map(&self) -> ShardMap {
        self.inner.lock_topology().map.clone()
    }

    /// The current shard set with addresses, sorted by name.
    pub fn shards(&self) -> Vec<(String, SocketAddr)> {
        let topology = self.inner.lock_topology();
        let mut shards: Vec<(String, SocketAddr)> = topology
            .shards
            .iter()
            .map(|s| (s.name.clone(), s.addr))
            .collect();
        shards.sort();
        shards
    }

    /// The shard currently owning `namespace`.
    pub fn owner_of(&self, namespace: &str) -> Option<String> {
        self.inner
            .lock_topology()
            .map
            .owner_of_namespace(namespace)
            .map(str::to_string)
    }

    /// Adds a shard daemon to the cluster. Ownership is recomputed; every
    /// namespace the new shard now owns is shipped from its previous owner
    /// (`SNAPSHOT NAMESPACE` there, `RESTORE` on the joiner) **before**
    /// routing flips, so the new shard's first request finds the warm
    /// cache already in place. Returns the shipped namespaces.
    pub fn join_shard(
        &self,
        name: &str,
        addr: SocketAddr,
    ) -> Result<Vec<ShippedNamespace>, ServiceError> {
        validate_token(name, "shard name").map_err(ServiceError::InvalidTopology)?;
        let _lifecycle = self
            .lifecycle
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let before = {
            let topology = self.inner.lock_topology();
            if topology.addr_of(name).is_some() {
                return Err(ServiceError::InvalidTopology(format!(
                    "shard {name:?} is already a member"
                )));
            }
            topology.map.clone()
        };
        let mut after = before.clone();
        after.add(name.to_string());

        // Rendezvous property: everything that moves, moves *to* the
        // joiner. Ship per source shard (one shipment may carry several
        // namespaces).
        let mut by_source: HashMap<String, Vec<String>> = HashMap::new();
        let mut shipped = Vec::new();
        for namespace in self.inner.spec.namespaces() {
            let old_owner = before.owner_of_namespace(namespace);
            let new_owner = after.owner_of_namespace(namespace);
            if let (Some(old), Some(new)) = (old_owner, new_owner) {
                if old != new {
                    debug_assert_eq!(new, name, "rendezvous join moved an unrelated namespace");
                    by_source
                        .entry(old.to_string())
                        .or_default()
                        .push(namespace.to_string());
                    shipped.push(ShippedNamespace {
                        namespace: namespace.to_string(),
                        from: old.to_string(),
                        to: name.to_string(),
                    });
                }
            }
        }
        for (source, namespaces) in by_source {
            let source_addr = self.inner.lock_topology().addr_of(&source).ok_or_else(|| {
                ServiceError::InvalidTopology(format!("shard {source:?} vanished"))
            })?;
            self.ship(&source, source_addr, &namespaces, name, addr)?;
        }

        let mut topology = self.inner.lock_topology();
        topology.shards.push(ShardState {
            name: name.to_string(),
            addr,
        });
        topology.map = after;
        Ok(shipped)
    }

    /// Removes a shard gracefully: every namespace it owns is shipped to
    /// its new owner first, then routing flips and the shard's tickets are
    /// invalidated. (For a *crashed* shard there is nothing to ship —
    /// restart it from its last snapshot and [`Router::set_shard_addr`]
    /// it back in instead.)
    pub fn leave_shard(&self, name: &str) -> Result<Vec<ShippedNamespace>, ServiceError> {
        let _lifecycle = self
            .lifecycle
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (before, leaving_addr) = {
            let topology = self.inner.lock_topology();
            let addr = topology.addr_of(name).ok_or_else(|| {
                ServiceError::InvalidTopology(format!("shard {name:?} is not a member"))
            })?;
            (topology.map.clone(), addr)
        };
        if before.len() == 1 {
            return Err(ServiceError::InvalidTopology(
                "cannot remove the last shard".to_string(),
            ));
        }
        let mut after = before.clone();
        after.remove(name);

        // Rendezvous property: everything that moves, moves *off* the
        // leaver. Group by destination.
        let mut by_target: HashMap<String, Vec<String>> = HashMap::new();
        let mut shipped = Vec::new();
        for namespace in self.inner.spec.namespaces() {
            let old_owner = before.owner_of_namespace(namespace);
            let new_owner = after.owner_of_namespace(namespace);
            if let (Some(old), Some(new)) = (old_owner, new_owner) {
                if old != new {
                    debug_assert_eq!(old, name, "rendezvous leave moved an unrelated namespace");
                    by_target
                        .entry(new.to_string())
                        .or_default()
                        .push(namespace.to_string());
                    shipped.push(ShippedNamespace {
                        namespace: namespace.to_string(),
                        from: name.to_string(),
                        to: new.to_string(),
                    });
                }
            }
        }
        for (target, namespaces) in by_target {
            let target_addr = self.inner.lock_topology().addr_of(&target).ok_or_else(|| {
                ServiceError::InvalidTopology(format!("shard {target:?} vanished"))
            })?;
            self.ship(name, leaving_addr, &namespaces, &target, target_addr)?;
        }

        let mut topology = self.inner.lock_topology();
        topology.shards.retain(|s| s.name != name);
        topology.map = after;
        drop(topology);
        self.inner.lock_tickets().purge_shard(name);
        Ok(shipped)
    }

    /// Rewires a shard to a new address — the recovery path after a crash
    /// and restart (`Service::from_snapshot` + a fresh daemon). The dead
    /// process's tickets are invalidated (its queued/finished jobs died
    /// with it; the snapshot carries evaluations, not job state), and
    /// handler connections to the old address are dropped on their next
    /// use.
    pub fn set_shard_addr(&self, name: &str, addr: SocketAddr) -> Result<(), ServiceError> {
        let _lifecycle = self
            .lifecycle
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        {
            let mut topology = self.inner.lock_topology();
            let shard = topology
                .shards
                .iter_mut()
                .find(|s| s.name == name)
                .ok_or_else(|| {
                    ServiceError::InvalidTopology(format!("shard {name:?} is not a member"))
                })?;
            shard.addr = addr;
        }
        self.inner.lock_tickets().purge_shard(name);
        Ok(())
    }

    /// Ships `namespaces` from one shard to another: `SNAPSHOT NAMESPACE`
    /// on the source, `RESTORE` on the target, staged in a shipment file.
    fn ship(
        &self,
        source: &str,
        source_addr: SocketAddr,
        namespaces: &[String],
        target: &str,
        target_addr: SocketAddr,
    ) -> Result<(), ServiceError> {
        static SHIP_COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = self
            .inner
            .config
            .ship_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir);
        let path = dir.join(format!(
            "modis_ship_{}_{}_{}.ship",
            std::process::id(),
            SHIP_COUNTER.fetch_add(1, Ordering::Relaxed),
            source,
        ));
        // The shipping verbs are whitespace-delimited lines: a staging
        // path containing whitespace would be mis-parsed by the shard
        // (last token wins) and silently land somewhere else.
        let path_str = path.display().to_string();
        validate_token(&path_str, "shipment path").map_err(ServiceError::InvalidTopology)?;
        let request = format!(
            "SNAPSHOT NAMESPACE {} {}",
            namespaces.join(" "),
            path.display()
        );
        let result = (|| {
            let reply = self.ask(source, source_addr, &request)?;
            if !reply.starts_with("OK ") {
                return Err(ServiceError::ShardUnavailable {
                    shard: source.to_string(),
                    reason: reply,
                });
            }
            let reply = self.ask(target, target_addr, &format!("RESTORE {}", path.display()))?;
            if !reply.starts_with("OK ") {
                return Err(ServiceError::ShardUnavailable {
                    shard: target.to_string(),
                    reason: reply,
                });
            }
            Ok(())
        })();
        let _ = std::fs::remove_file(&path);
        result
    }

    /// One-shot request/response against a shard daemon.
    fn ask(&self, shard: &str, addr: SocketAddr, line: &str) -> Result<String, ServiceError> {
        let fail = |reason: String| ServiceError::ShardUnavailable {
            shard: shard.to_string(),
            reason,
        };
        let mut stream = TcpStream::connect_timeout(&addr, self.inner.config.connect_timeout)
            .map_err(|e| fail(e.to_string()))?;
        stream
            .set_read_timeout(Some(self.inner.config.ship_timeout))
            .map_err(|e| fail(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| fail(e.to_string()))?;
        stream
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| fail(e.to_string()))?;
        let mut reply = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match stream.read(&mut byte) {
                Ok(0) => return Err(fail("connection closed before reply".to_string())),
                Ok(_) if byte[0] == b'\n' => break,
                Ok(_) => reply.push(byte[0]),
                Err(e) => return Err(fail(e.to_string())),
            }
        }
        Ok(String::from_utf8_lossy(&reply).trim_end().to_string())
    }

    /// Stops the router: the accept loop exits, every client handler
    /// flushes a final protocol error and exits, all threads are joined.
    /// Idempotent, including under concurrent callers (same discipline as
    /// [`crate::Daemon::stop`]). Shard daemons are *not* stopped — they
    /// are independent processes.
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        let mut accept = self
            .accept_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(handle) = accept.take() {
            let _ = handle.join();
        }
        drop(accept);
        let handles: Vec<JoinHandle<()>> = {
            let mut handlers = self.handlers.lock().unwrap_or_else(PoisonError::into_inner);
            handlers.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accepts client connections until stopped, pruning finished handlers.
fn accept_loop(
    listener: TcpListener,
    inner: Arc<RouterInner>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let inner = Arc::clone(&inner);
                let handle = std::thread::spawn(move || serve_client(inner, stream));
                let mut handlers = handlers.lock().unwrap_or_else(PoisonError::into_inner);
                handlers.retain(|h| !h.is_finished());
                handlers.push(handle);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// A line-buffered connection polled with a read timeout.
struct LineConn {
    stream: TcpStream,
    buf: Vec<u8>,
    eof: bool,
}

/// One poll of a [`LineConn`].
enum Polled {
    /// A complete line (terminator stripped).
    Line(String),
    /// Nothing complete yet.
    Pending,
    /// Orderly end of input; a final unterminated line was already
    /// surfaced as [`Polled::Line`].
    Eof,
    /// The connection failed.
    Dead,
}

impl LineConn {
    fn new(stream: TcpStream, poll_interval: Duration) -> io::Result<LineConn> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(poll_interval.max(Duration::from_micros(1))))?;
        Ok(LineConn {
            stream,
            buf: Vec::new(),
            eof: false,
        })
    }

    fn send(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(format!("{line}\n").as_bytes())
    }

    /// Returns the next complete line, reading at most one chunk from the
    /// socket when the buffer has none.
    fn poll_line(&mut self) -> Polled {
        if let Some(line) = self.take_buffered_line() {
            return Polled::Line(line);
        }
        if self.eof {
            return self.drain_tail_or_eof();
        }
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                self.eof = true;
                self.drain_tail_or_eof()
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                match self.take_buffered_line() {
                    Some(line) => Polled::Line(line),
                    None => Polled::Pending,
                }
            }
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut
                    || err.kind() == io::ErrorKind::Interrupted =>
            {
                Polled::Pending
            }
            Err(_) => Polled::Dead,
        }
    }

    fn take_buffered_line(&mut self) -> Option<String> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
        line.pop();
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    fn drain_tail_or_eof(&mut self) -> Polled {
        if self.buf.is_empty() {
            Polled::Eof
        } else {
            let line = String::from_utf8_lossy(&std::mem::take(&mut self.buf)).into_owned();
            Polled::Line(line)
        }
    }
}

/// A cached connection to one shard, pinned to the address it was opened
/// against so a rewired shard invalidates it, and stamped with an epoch
/// so an expectation can only ever read from the *same* connection its
/// request was sent on (a response owed by a dead connection must fail,
/// never consume a fresh connection's line for a later request).
struct ShardConn {
    conn: LineConn,
    addr: SocketAddr,
    epoch: u64,
}

/// One client handler's shard connections plus the epoch counter.
#[derive(Default)]
struct ConnPool {
    conns: HashMap<String, ShardConn>,
    next_epoch: u64,
}

/// Rewrite applied to a single forwarded response line.
enum Rewrite {
    /// `SUBMIT`: translate `TICKET <local>` to a cluster-wide id.
    Submit,
    /// `POLL`: pass through, but re-express `ERR unknown ticket` with the
    /// cluster id the client asked about.
    TicketErr {
        /// The cluster-wide ticket id of the request.
        global: u64,
    },
    /// `RESULT`: rewrite the echoed ticket id to the cluster id.
    Result {
        /// The cluster-wide ticket id of the request.
        global: u64,
    },
}

/// A fan-out verb's accumulator.
enum FanKind {
    /// `RUN`: sum the per-shard `OK <n>` counts.
    Run { total: u64 },
    /// `SNAPSHOT <path>`: sum the per-shard `OK <bytes>` sizes.
    Snapshot { total: u64 },
    /// `STATS`: sum the per-shard cache counters.
    Stats { sums: [u64; 6] },
}

/// STATS keys aggregated cluster-wide, in output order.
const STAT_KEYS: [&str; 6] = [
    "hits",
    "misses",
    "entries",
    "evictions",
    "memo_entries",
    "memo_evictions",
];

/// One pending `WAIT` slice on one shard.
struct WaitPart {
    shard: String,
    epoch: u64,
    remaining: usize,
}

/// Which counted multi-line verb a [`Expect::Gather`] is collecting.
#[derive(Clone, Copy, PartialEq, Eq)]
enum GatherKind {
    /// `METRICS`: per-shard header `METRICS <n>`, merged with `shard=`
    /// labels; an unreachable shard degrades to a comment line.
    Metrics,
    /// `TRACE DUMP <n>`: per-shard header `SPANS <k>`, merged with a
    /// `shard=` suffix; an unreachable shard fails the whole reply.
    Trace,
}

impl GatherKind {
    /// The header word a shard's reply must start with.
    fn header(self) -> &'static str {
        match self {
            GatherKind::Metrics => "METRICS",
            GatherKind::Trace => "SPANS",
        }
    }
}

/// One shard's slice of a counted multi-line fan-in.
struct GatherPart {
    shard: String,
    epoch: u64,
    /// `None` until the `<HEADER> <n>` count line arrives.
    remaining: Option<usize>,
    /// Body lines collected so far (un-relabeled).
    lines: Vec<String>,
    /// Set when the shard failed (unavailable, or a malformed header).
    failed: Option<String>,
}

impl GatherPart {
    fn done(&self) -> bool {
        self.failed.is_some() || self.remaining == Some(0)
    }
}

/// One response position in a client's ordered pipeline (the router-side
/// mirror of the reactor's `Slot`). Every shard-owed response carries the
/// epoch of the connection its request went out on.
enum Expect {
    /// The response text is known (may span multiple lines).
    Local(String),
    /// `BYE`, then close the connection.
    Quit,
    /// One line owed by one shard.
    Forward {
        shard: String,
        epoch: u64,
        rewrite: Rewrite,
        /// When the request left the router (feeds the per-shard
        /// forward-latency histogram on resolution).
        sent: Instant,
    },
    /// One line owed by each listed shard, folded into one response.
    FanOut {
        kind: FanKind,
        pending: Vec<(String, u64)>,
        error: Option<String>,
    },
    /// A cross-shard `WAIT`: local error lines first, then streamed
    /// `DONE`s merged in arrival order.
    Wait {
        pre: Vec<String>,
        parts: Vec<WaitPart>,
    },
    /// A counted multi-line reply owed by each shard (`METRICS` /
    /// `TRACE DUMP`), merged into one counted reply with shard labels.
    Gather {
        kind: GatherKind,
        parts: Vec<GatherPart>,
    },
}

/// Serves one client connection until QUIT/EOF/stop.
fn serve_client(inner: Arc<RouterInner>, stream: TcpStream) {
    let poll = inner.config.poll_interval;
    let Ok(mut client) = LineConn::new(stream, poll) else {
        return;
    };
    let mut pool = ConnPool::default();
    let mut expects: VecDeque<Expect> = VecDeque::new();
    let mut discarding = false;
    let mut client_eof = false;
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            let _ = client.send("ERR service is shut down");
            return;
        }
        // 1. Read and immediately dispatch client requests (pipelining:
        // every parsed request is forwarded before earlier responses are
        // read back), under the same backpressure rule as the reactor.
        if !client_eof && expects.len() < inner.config.max_pipelined {
            match client.poll_line() {
                Polled::Line(line) => {
                    if discarding {
                        discarding = false;
                    } else if line.len() > inner.config.max_line_len {
                        expects.push_back(Expect::Local(format!(
                            "ERR line too long (max {} bytes)",
                            inner.config.max_line_len
                        )));
                    } else {
                        let expect = route_request(&inner, &mut pool, &line);
                        expects.push_back(expect);
                    }
                }
                Polled::Pending => {
                    // An oversized partial line is rejected eagerly and
                    // discarded through its eventual terminator.
                    if !discarding && client.buf.len() > inner.config.max_line_len {
                        discarding = true;
                        client.buf.clear();
                        expects.push_back(Expect::Local(format!(
                            "ERR line too long (max {} bytes)",
                            inner.config.max_line_len
                        )));
                    }
                }
                Polled::Eof => client_eof = true,
                Polled::Dead => return,
            }
        }
        // 2. Resolve the head of the pipeline as far as it goes.
        match resolve_head(&inner, &mut pool, &mut expects, &mut client) {
            ClientState::Open => {}
            ClientState::Closed => return,
        }
        if client_eof && expects.is_empty() {
            return;
        }
    }
}

enum ClientState {
    Open,
    Closed,
}

/// Classifies and forwards one request, returning the expectation that
/// will produce its response.
fn route_request(inner: &Arc<RouterInner>, pool: &mut ConnPool, line: &str) -> Expect {
    let trimmed = line.trim();
    let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (trimmed, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "PING" => Expect::Local("PONG".into()),
        "LIST" => {
            let mut out = String::from("SCENARIOS");
            for name in inner.spec.scenario_names() {
                out.push(' ');
                out.push_str(name);
            }
            Expect::Local(out)
        }
        "SHARDS" => {
            let topology = inner.lock_topology();
            let mut shards: Vec<&ShardState> = topology.shards.iter().collect();
            shards.sort_by(|a, b| a.name.cmp(&b.name));
            let mut out = format!("SHARDS {}", shards.len());
            for shard in shards {
                let owned = inner
                    .spec
                    .namespaces()
                    .iter()
                    .filter(|ns| topology.map.owner_of_namespace(ns) == Some(shard.name.as_str()))
                    .count();
                out.push_str(&format!(
                    "\nSHARD {} addr={} namespaces={owned}",
                    shard.name, shard.addr
                ));
            }
            Expect::Local(out)
        }
        "SUBMIT" if !rest.is_empty() => {
            let Some(namespace) = inner.spec.namespace_of(rest) else {
                return Expect::Local(format!("ERR unknown scenario {rest:?}"));
            };
            let Some(owner) = inner
                .lock_topology()
                .map
                .owner_of_namespace(namespace)
                .map(str::to_string)
            else {
                return Expect::Local("ERR cluster has no shards".into());
            };
            match forward(inner, pool, &owner, trimmed) {
                Ok(epoch) => Expect::Forward {
                    shard: owner,
                    epoch,
                    rewrite: Rewrite::Submit,
                    sent: Instant::now(),
                },
                Err(err) => Expect::Local(err),
            }
        }
        "POLL" | "RESULT" => {
            let upper = verb.to_ascii_uppercase();
            let Ok(global) = rest.parse::<u64>() else {
                return Expect::Local(if upper == "POLL" {
                    "ERR POLL expects a numeric ticket".into()
                } else {
                    "ERR RESULT expects a numeric ticket".into()
                });
            };
            let Some((shard, local)) = inner.lock_tickets().lookup(global) else {
                return Expect::Local(format!("ERR unknown ticket {global}"));
            };
            match forward(inner, pool, &shard, &format!("{upper} {local}")) {
                Ok(epoch) => Expect::Forward {
                    shard,
                    epoch,
                    rewrite: if upper == "POLL" {
                        Rewrite::TicketErr { global }
                    } else {
                        Rewrite::Result { global }
                    },
                    sent: Instant::now(),
                },
                Err(err) => Expect::Local(err),
            }
        }
        "RUN" => fan_out(inner, pool, FanKind::Run { total: 0 }, |_| "RUN".into()),
        "METRICS" => gather(inner, pool, GatherKind::Metrics, "METRICS"),
        "TRACE"
            if rest
                .split_whitespace()
                .next()
                .is_some_and(|t| t.eq_ignore_ascii_case("DUMP")) =>
        {
            let count = rest.split_whitespace().nth(1);
            if count.is_some_and(|t| t.parse::<u64>().is_ok()) {
                // Each shard returns up to <n> spans; the merged dump may
                // carry up to <n> per shard (documented in the protocol).
                gather(inner, pool, GatherKind::Trace, trimmed)
            } else {
                Expect::Local("ERR TRACE DUMP expects a numeric span count".into())
            }
        }
        "STATS" => fan_out(inner, pool, FanKind::Stats { sums: [0; 6] }, |_| {
            "STATS".into()
        }),
        "SNAPSHOT" if !rest.is_empty() => {
            let base = rest.to_string();
            fan_out(inner, pool, FanKind::Snapshot { total: 0 }, move |shard| {
                format!("SNAPSHOT {base}.{shard}")
            })
        }
        "WAIT" => {
            if rest.is_empty() {
                return Expect::Local("ERR WAIT expects one or more numeric tickets".into());
            }
            let mut globals = Vec::new();
            for token in rest.split_whitespace() {
                match token.parse::<u64>() {
                    Ok(id) => globals.push(id),
                    Err(_) => {
                        return Expect::Local("ERR WAIT expects one or more numeric tickets".into())
                    }
                }
            }
            let mut pre = Vec::new();
            let mut per_shard: Vec<(String, Vec<u64>)> = Vec::new();
            {
                let tickets = inner.lock_tickets();
                for global in globals {
                    match tickets.lookup(global) {
                        Some((shard, local)) => {
                            match per_shard.iter_mut().find(|(s, _)| *s == shard) {
                                Some((_, locals)) => locals.push(local),
                                None => per_shard.push((shard, vec![local])),
                            }
                        }
                        None => pre.push(format!("ERR unknown ticket {global}")),
                    }
                }
            }
            let mut parts = Vec::new();
            for (shard, locals) in per_shard {
                let locals_line = locals
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(" ");
                match forward(inner, pool, &shard, &format!("WAIT {locals_line}")) {
                    Ok(epoch) => parts.push(WaitPart {
                        shard,
                        epoch,
                        remaining: locals.len(),
                    }),
                    Err(err) => {
                        for _ in &locals {
                            pre.push(err.clone());
                        }
                    }
                }
            }
            Expect::Wait { pre, parts }
        }
        "QUIT" => Expect::Quit,
        _ => Expect::Local(format!("ERR unknown command {verb:?}")),
    }
}

/// Forwards `line` to every shard (lines derived per shard by `render`),
/// returning the folding expectation.
fn fan_out(
    inner: &Arc<RouterInner>,
    pool: &mut ConnPool,
    kind: FanKind,
    render: impl Fn(&str) -> String,
) -> Expect {
    let shards: Vec<String> = inner.lock_topology().map.shards().to_vec();
    if shards.is_empty() {
        return Expect::Local("ERR cluster has no shards".into());
    }
    let mut pending = Vec::new();
    let mut error = None;
    for shard in shards {
        match forward(inner, pool, &shard, &render(&shard)) {
            Ok(epoch) => pending.push((shard, epoch)),
            Err(err) => error = Some(error.unwrap_or(err)),
        }
    }
    if pending.is_empty() {
        return Expect::Local(error.unwrap_or_else(|| "ERR cluster has no shards".into()));
    }
    Expect::FanOut {
        kind,
        pending,
        error,
    }
}

/// Forwards a counted multi-line verb (`METRICS` / `TRACE DUMP`) to every
/// shard, returning the merging expectation. A shard that cannot even be
/// reached starts out failed; the merge policy per failure lives in
/// [`GatherKind`].
fn gather(inner: &Arc<RouterInner>, pool: &mut ConnPool, kind: GatherKind, line: &str) -> Expect {
    let shards: Vec<String> = inner.lock_topology().map.shards().to_vec();
    if shards.is_empty() {
        return Expect::Local("ERR cluster has no shards".into());
    }
    let mut parts = Vec::new();
    for shard in shards {
        let part = match forward(inner, pool, &shard, line) {
            Ok(epoch) => GatherPart {
                shard,
                epoch,
                remaining: None,
                lines: Vec::new(),
                failed: None,
            },
            Err(err) => GatherPart {
                shard,
                epoch: 0,
                remaining: None,
                lines: Vec::new(),
                failed: Some(err),
            },
        };
        parts.push(part);
    }
    Expect::Gather { kind, parts }
}

/// Injects `shard="<name>"` as the *first* label of a Prometheus sample
/// line (`name{a="b"} v` or `name v`). Comment lines are never passed
/// here; the registry never renders an empty `{}` block.
fn inject_shard_label(line: &str, shard: &str) -> String {
    match line.find('{') {
        Some(brace) if line.find(' ').is_none_or(|space| brace < space) => {
            format!(
                "{}{{shard=\"{}\",{}",
                &line[..brace],
                shard,
                &line[brace + 1..]
            )
        }
        _ => match line.split_once(' ') {
            Some((name, rest)) => format!("{name}{{shard=\"{shard}\"}} {rest}"),
            None => line.to_string(),
        },
    }
}

/// Merges the completed parts of a `METRICS` / `TRACE DUMP` gather into
/// one counted multi-line reply.
fn render_gather(inner: &Arc<RouterInner>, kind: GatherKind, parts: &[GatherPart]) -> String {
    match kind {
        GatherKind::Metrics => {
            // Router-own families first (already carry their own labels;
            // `router_*` names cannot collide with shard-side families),
            // then each shard's exposition relabeled. `# HELP` / `# TYPE`
            // comments repeat per shard — keep the first occurrence.
            let mut out = Vec::new();
            let mut seen_comments: HashSet<String> = HashSet::new();
            for line in inner.metrics.render() {
                if line.starts_with('#') {
                    seen_comments.insert(line.clone());
                }
                out.push(line);
            }
            for part in parts {
                if let Some(reason) = &part.failed {
                    // A dead shard must not kill the scrape — that is
                    // exactly when monitoring matters. Degrade to a
                    // comment so the gap is visible in the exposition.
                    out.push(format!("# shard {} unavailable: {reason}", part.shard));
                    continue;
                }
                for line in &part.lines {
                    if line.starts_with('#') {
                        if seen_comments.insert(line.clone()) {
                            out.push(line.clone());
                        }
                    } else {
                        out.push(inject_shard_label(line, &part.shard));
                    }
                }
            }
            let mut reply = format!("METRICS {}", out.len());
            for line in out {
                reply.push('\n');
                reply.push_str(&line);
            }
            reply
        }
        GatherKind::Trace => {
            if let Some(part) = parts.iter().find(|p| p.failed.is_some()) {
                return part.failed.clone().expect("found a failed part");
            }
            let mut out = Vec::new();
            for part in parts {
                for line in &part.lines {
                    out.push(format!("{line} shard={}", part.shard));
                }
            }
            let mut reply = format!("SPANS {}", out.len());
            for line in out {
                reply.push('\n');
                reply.push_str(&line);
            }
            reply
        }
    }
}

/// Sends one line to `shard`, (re)connecting as needed. Returns the epoch
/// of the connection the line went out on — the expectation must read its
/// response from that epoch only. The error value is a ready-to-emit
/// protocol line.
fn forward(
    inner: &Arc<RouterInner>,
    pool: &mut ConnPool,
    shard: &str,
    line: &str,
) -> Result<u64, String> {
    let unavailable = |reason: &str| format!("ERR shard {shard} unavailable ({reason})");
    let Some(addr) = inner.lock_topology().addr_of(shard) else {
        return Err(unavailable("not a member"));
    };
    // A rewired shard invalidates the cached connection.
    if pool.conns.get(shard).is_some_and(|c| c.addr != addr) {
        pool.conns.remove(shard);
        inner.reconnects.inc();
    }
    for attempt in 0..2 {
        if !pool.conns.contains_key(shard) {
            let stream = TcpStream::connect_timeout(&addr, inner.config.connect_timeout)
                .map_err(|e| unavailable(&e.to_string()))?;
            let conn = LineConn::new(stream, inner.config.poll_interval)
                .map_err(|e| unavailable(&e.to_string()))?;
            pool.next_epoch += 1;
            pool.conns.insert(
                shard.to_string(),
                ShardConn {
                    conn,
                    addr,
                    epoch: pool.next_epoch,
                },
            );
        }
        let entry = pool.conns.get_mut(shard).expect("inserted above");
        let epoch = entry.epoch;
        match entry.conn.send(line) {
            Ok(()) => return Ok(epoch),
            Err(err) => {
                // A stale pooled connection (shard restarted) fails here.
                // Dropping it retires its epoch: responses still owed on
                // it resolve to "shard unavailable" instead of consuming
                // this request's reply off the fresh connection — which
                // makes the single clean retry below safe.
                pool.conns.remove(shard);
                inner.reconnects.inc();
                if attempt == 1 {
                    return Err(unavailable(&err.to_string()));
                }
            }
        }
    }
    unreachable!("loop either returns or errors on the second attempt")
}

/// Reads one response line owed by `shard` on the connection with the
/// given `epoch`. A missing, retired (epoch mismatch) or rewired
/// connection means the response is lost — never read a newer
/// connection's lines for an older request.
fn poll_shard(inner: &Arc<RouterInner>, pool: &mut ConnPool, shard: &str, epoch: u64) -> Polled {
    let current_addr = inner.lock_topology().addr_of(shard);
    let Some(entry) = pool.conns.get_mut(shard) else {
        return Polled::Dead;
    };
    if entry.epoch != epoch {
        // The connection this response was owed on is gone; the current
        // one carries other requests' replies.
        return Polled::Dead;
    }
    if current_addr != Some(entry.addr) {
        // Rewired mid-flight: the old process (and the response) is gone.
        pool.conns.remove(shard);
        return Polled::Dead;
    }
    match entry.conn.poll_line() {
        Polled::Line(line) => Polled::Line(line),
        Polled::Pending => Polled::Pending,
        Polled::Eof | Polled::Dead => {
            pool.conns.remove(shard);
            Polled::Dead
        }
    }
}

/// Resolves as many leading expectations as currently possible, writing
/// response lines to the client in order.
fn resolve_head(
    inner: &Arc<RouterInner>,
    pool: &mut ConnPool,
    expects: &mut VecDeque<Expect>,
    client: &mut LineConn,
) -> ClientState {
    loop {
        let Some(head) = expects.front_mut() else {
            return ClientState::Open;
        };
        match head {
            Expect::Local(_) => {
                let Some(Expect::Local(text)) = expects.pop_front() else {
                    unreachable!("front matched Local");
                };
                if client.send(&text).is_err() {
                    return ClientState::Closed;
                }
            }
            Expect::Quit => {
                let _ = client.send("BYE");
                return ClientState::Closed;
            }
            Expect::Forward {
                shard,
                epoch,
                rewrite,
                sent,
            } => {
                let shard_name = shard.clone();
                let sent = *sent;
                match poll_shard(inner, pool, &shard_name, *epoch) {
                    Polled::Line(line) => {
                        inner
                            .metrics
                            .histogram_with(
                                "router_forward_us",
                                "Round-trip latency of single-shard forwards \
                                 (SUBMIT/POLL/RESULT), router-side, in microseconds.",
                                &[("shard", &shard_name)],
                            )
                            .record_duration(sent.elapsed());
                        let reply = apply_rewrite(inner, &shard_name, rewrite, &line);
                        expects.pop_front();
                        if client.send(&reply).is_err() {
                            return ClientState::Closed;
                        }
                    }
                    Polled::Pending => return ClientState::Open,
                    Polled::Eof | Polled::Dead => {
                        expects.pop_front();
                        let reply = format!("ERR shard {shard_name} unavailable (connection lost)");
                        if client.send(&reply).is_err() {
                            return ClientState::Closed;
                        }
                    }
                }
            }
            Expect::FanOut {
                kind,
                pending,
                error,
            } => {
                let mut progressed = true;
                while progressed && !pending.is_empty() {
                    progressed = false;
                    let mut index = 0;
                    while index < pending.len() {
                        let (shard, epoch) = pending[index].clone();
                        match poll_shard(inner, pool, &shard, epoch) {
                            Polled::Line(line) => {
                                fold_fan_line(kind, error, &shard, &line);
                                pending.remove(index);
                                progressed = true;
                            }
                            Polled::Pending => index += 1,
                            Polled::Eof | Polled::Dead => {
                                let reason =
                                    format!("ERR shard {shard} unavailable (connection lost)");
                                error.get_or_insert(reason);
                                pending.remove(index);
                                progressed = true;
                            }
                        }
                    }
                }
                if !pending.is_empty() {
                    return ClientState::Open;
                }
                let reply = match (&*kind, error.take()) {
                    (_, Some(err)) => err,
                    (FanKind::Run { total } | FanKind::Snapshot { total }, None) => {
                        format!("OK {total}")
                    }
                    (FanKind::Stats { sums }, None) => {
                        let shard_count = inner.lock_topology().map.len();
                        let mut out = String::from("STATS");
                        for (key, value) in STAT_KEYS.iter().zip(sums) {
                            out.push_str(&format!(" {key}={value}"));
                        }
                        out.push_str(&format!(" cluster_shards={shard_count}"));
                        out
                    }
                };
                expects.pop_front();
                if client.send(&reply).is_err() {
                    return ClientState::Closed;
                }
            }
            Expect::Wait { pre, parts } => {
                for line in pre.drain(..) {
                    if client.send(&line).is_err() {
                        return ClientState::Closed;
                    }
                }
                let mut any_pending = false;
                for part in parts.iter_mut() {
                    while part.remaining > 0 {
                        match poll_shard(inner, pool, &part.shard, part.epoch) {
                            Polled::Line(line) => {
                                part.remaining -= 1;
                                let reply = rewrite_wait_line(inner, &part.shard, &line);
                                if client.send(&reply).is_err() {
                                    return ClientState::Closed;
                                }
                            }
                            Polled::Pending => {
                                any_pending = true;
                                break;
                            }
                            Polled::Eof | Polled::Dead => {
                                let reply = format!(
                                    "ERR shard {} unavailable (connection lost)",
                                    part.shard
                                );
                                for _ in 0..part.remaining {
                                    if client.send(&reply).is_err() {
                                        return ClientState::Closed;
                                    }
                                }
                                part.remaining = 0;
                            }
                        }
                    }
                }
                if any_pending {
                    return ClientState::Open;
                }
                expects.pop_front();
            }
            Expect::Gather { kind, parts } => {
                let kind = *kind;
                let mut progressed = true;
                while progressed {
                    progressed = false;
                    for part in parts.iter_mut() {
                        while !part.done() {
                            match poll_shard(inner, pool, &part.shard, part.epoch) {
                                Polled::Line(line) => {
                                    progressed = true;
                                    match part.remaining {
                                        None => {
                                            // First line: `<HEADER> <n>`
                                            // or a shard-side error.
                                            let count = line
                                                .strip_prefix(kind.header())
                                                .map(str::trim)
                                                .and_then(|n| n.parse::<usize>().ok());
                                            match count {
                                                Some(n) => part.remaining = Some(n),
                                                None => {
                                                    part.failed = Some(format!(
                                                        "ERR shard {}: unexpected reply {line:?}",
                                                        part.shard
                                                    ));
                                                }
                                            }
                                        }
                                        Some(n) => {
                                            part.lines.push(line);
                                            part.remaining = Some(n - 1);
                                        }
                                    }
                                }
                                Polled::Pending => break,
                                Polled::Eof | Polled::Dead => {
                                    part.failed = Some(format!(
                                        "ERR shard {} unavailable (connection lost)",
                                        part.shard
                                    ));
                                }
                            }
                        }
                    }
                }
                if parts.iter().any(|p| !p.done()) {
                    return ClientState::Open;
                }
                let reply = render_gather(inner, kind, parts);
                expects.pop_front();
                if client.send(&reply).is_err() {
                    return ClientState::Closed;
                }
            }
        }
    }
}

/// Applies a single-line response rewrite.
fn apply_rewrite(inner: &Arc<RouterInner>, shard: &str, rewrite: &Rewrite, line: &str) -> String {
    match rewrite {
        Rewrite::Submit => match line
            .strip_prefix("TICKET ")
            .and_then(|s| s.parse::<u64>().ok())
        {
            Some(local) => {
                let global = inner
                    .lock_tickets()
                    .allocate(shard, local, inner.config.max_tickets);
                inner.remaps.inc();
                format!("TICKET {global}")
            }
            None => line.to_string(),
        },
        Rewrite::TicketErr { global } => {
            if line.starts_with("ERR unknown ticket") {
                format!("ERR unknown ticket {global}")
            } else {
                line.to_string()
            }
        }
        Rewrite::Result { global } => {
            if let Some(rest) = line.strip_prefix("RESULT ") {
                match rest.split_once(' ') {
                    Some((_, payload)) => format!("RESULT {global} {payload}"),
                    None => format!("RESULT {global}"),
                }
            } else if line.starts_with("ERR unknown ticket") {
                format!("ERR unknown ticket {global}")
            } else if line.starts_with("ERR ticket ") {
                // `ERR ticket <local> is not finished` — re-express with
                // the cluster id.
                format!("ERR ticket {global} is not finished")
            } else {
                line.to_string()
            }
        }
    }
}

/// Folds one shard's fan-out response line into the accumulator.
fn fold_fan_line(kind: &mut FanKind, error: &mut Option<String>, shard: &str, line: &str) {
    if line.starts_with("ERR ") {
        error.get_or_insert_with(|| format!("ERR shard {shard}: {}", &line[4..]));
        return;
    }
    match kind {
        FanKind::Run { total } | FanKind::Snapshot { total } => {
            match line.strip_prefix("OK ").and_then(|s| s.parse::<u64>().ok()) {
                Some(n) => *total += n,
                None => {
                    error.get_or_insert_with(|| {
                        format!("ERR shard {shard}: unexpected reply {line:?}")
                    });
                }
            }
        }
        FanKind::Stats { sums } => {
            if !line.starts_with("STATS ") {
                error
                    .get_or_insert_with(|| format!("ERR shard {shard}: unexpected reply {line:?}"));
                return;
            }
            for token in line.split_whitespace().skip(1) {
                if let Some((key, value)) = token.split_once('=') {
                    if let (Some(slot), Ok(v)) = (
                        STAT_KEYS.iter().position(|k| *k == key),
                        value.parse::<u64>(),
                    ) {
                        sums[slot] += v;
                    }
                }
            }
        }
    }
}

/// Rewrites one streamed `WAIT` line (`DONE <local> …` or an error) to
/// cluster ticket ids.
fn rewrite_wait_line(inner: &Arc<RouterInner>, shard: &str, line: &str) -> String {
    let translate = |local: u64| inner.lock_tickets().global_for(shard, local);
    if let Some(rest) = line.strip_prefix("DONE ") {
        if let Some((id, payload)) = rest.split_once(' ') {
            if let Some(global) = id.parse::<u64>().ok().and_then(translate) {
                return format!("DONE {global} {payload}");
            }
        }
    } else if let Some(rest) = line.strip_prefix("ERR unknown ticket ") {
        if let Some(global) = rest.trim().parse::<u64>().ok().and_then(translate) {
            return format!("ERR unknown ticket {global}");
        }
    }
    line.to_string()
}
