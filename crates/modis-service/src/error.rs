//! Error types of the service layer.

use std::fmt;

use crate::snapshot::SnapshotError;

/// Everything that can go wrong inside the service layer.
#[derive(Debug)]
pub enum ServiceError {
    /// A submission or lookup named a scenario that was never registered.
    UnknownScenario(String),
    /// A registration re-used an existing scenario name.
    DuplicateScenario(String),
    /// A registration re-used a cache namespace over an incompatible
    /// substrate/task (different fingerprint) — sharing evaluations across
    /// such spaces poisons valuations, so it is rejected at registration.
    NamespaceConflict {
        /// The contested cache namespace.
        namespace: String,
        /// Name of the scenario that first claimed the namespace.
        registered_by: String,
    },
    /// A poll referenced a ticket the service never issued — or one whose
    /// completed outcome has already been evicted by the retention policy
    /// (`ServiceConfig::completed_retention`).
    UnknownTicket(u64),
    /// A submission arrived after [`crate::Service::shutdown`]: no worker
    /// will ever drain it, so accepting it would strand the ticket in the
    /// queue forever.
    Stopped,
    /// Persisting or restoring an evaluation-cache snapshot failed.
    Snapshot(SnapshotError),
    /// A cluster routing table was malformed (empty or multi-token names,
    /// duplicate scenarios).
    InvalidClusterSpec(String),
    /// A cluster operation could not reach a shard daemon (connect, send
    /// or receive failed) — the request may be retried once the shard is
    /// back or rewired to a new address.
    ShardUnavailable {
        /// The unreachable shard's name.
        shard: String,
        /// What failed.
        reason: String,
    },
    /// A cluster topology change named an unknown shard, or would leave
    /// the cluster without any shard.
    InvalidTopology(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownScenario(name) => write!(f, "unknown scenario {name:?}"),
            ServiceError::DuplicateScenario(name) => {
                write!(f, "scenario {name:?} is already registered")
            }
            ServiceError::NamespaceConflict {
                namespace,
                registered_by,
            } => write!(
                f,
                "cache namespace {namespace:?} already belongs to scenario \
                 {registered_by:?} over an incompatible substrate/task"
            ),
            ServiceError::UnknownTicket(id) => write!(f, "unknown ticket {id}"),
            ServiceError::Stopped => write!(f, "service is shut down"),
            ServiceError::Snapshot(err) => write!(f, "snapshot error: {err}"),
            ServiceError::InvalidClusterSpec(reason) => {
                write!(f, "invalid cluster spec: {reason}")
            }
            ServiceError::ShardUnavailable { shard, reason } => {
                write!(f, "shard {shard:?} unavailable: {reason}")
            }
            ServiceError::InvalidTopology(reason) => write!(f, "invalid topology: {reason}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Snapshot(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SnapshotError> for ServiceError {
    fn from(err: SnapshotError) -> Self {
        ServiceError::Snapshot(err)
    }
}
