//! The long-lived skyline-serving service.
//!
//! A [`Service`] owns one [`Engine`] (and therefore one shared evaluation
//! cache) for its whole lifetime and keeps it warm across requests:
//!
//! 1. **register** — scenarios (substrate × algorithm × config) are
//!    registered once under a name, with namespace fingerprints checked;
//! 2. **submit** — clients enqueue runs by name and get a [`Ticket`];
//! 3. **schedule** — queued runs are ordered by the cost-aware,
//!    namespace-grouped scheduler so cache-warming runs go first;
//! 4. **batch** — the start states of every queued run (and any explicit
//!    [`ValuationRequest`]s) are valuated in one thread-pool pass per
//!    namespace before the searches start;
//! 5. **snapshot** — the shared cache persists to disk on demand and a
//!    fresh process warm-starts from the file.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use modis_core::estimator::SharedEvaluation;
use modis_core::telemetry::{Counter, Gauge, Histogram, TraceContext};
use modis_data::StateBitmap;
use modis_engine::{BatchValuation, CacheStats, Engine, EngineConfig, Scenario, ScenarioOutcome};

use crate::batch::{group_requests, start_states, ValuationRequest};
use crate::error::ServiceError;
use crate::registry::ScenarioRegistry;
use crate::scheduler::{CostModel, CostScheduler, QueuedRequest};
use crate::snapshot;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Configuration of the owned engine (threads, cache shards/capacity).
    pub engine: EngineConfig,
    /// EWMA weight of the newest cost observation in `(0, 1]`.
    pub cost_smoothing: f64,
    /// Whether `run_pending` batch-valuates the start states of every
    /// queued scenario (one pass per namespace) before running searches.
    pub prewarm_start_states: bool,
    /// How long the background worker sleeps when the queue is empty.
    pub worker_poll: Duration,
    /// How many finished outcomes the service retains for polling (0 =
    /// unbounded). A long-lived daemon would otherwise accumulate one
    /// skyline result per submission forever; once a run's outcome is
    /// evicted, polling its ticket answers `UnknownTicket`.
    pub completed_retention: usize,
    /// End-to-end latency (queue wait + execution) at or above which a
    /// finished run's trace is recorded in the tracer's slow-request ring
    /// (dumped via the `TRACE SLOW` wire verb).
    pub slow_request_threshold: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: EngineConfig::default(),
            cost_smoothing: 0.5,
            prewarm_start_states: true,
            worker_poll: Duration::from_millis(20),
            completed_retention: 4096,
            slow_request_threshold: Duration::from_millis(250),
        }
    }
}

impl ServiceConfig {
    /// Builder-style engine-config setter.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Builder-style prewarm toggle.
    pub fn with_prewarm(mut self, prewarm: bool) -> Self {
        self.prewarm_start_states = prewarm;
        self
    }

    /// Builder-style completed-outcome retention setter (0 = unbounded).
    pub fn with_completed_retention(mut self, retention: usize) -> Self {
        self.completed_retention = retention;
        self
    }

    /// Builder-style slow-request threshold setter.
    pub fn with_slow_request_threshold(mut self, threshold: Duration) -> Self {
        self.slow_request_threshold = threshold;
        self
    }
}

/// Handle to a submitted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(pub u64);

/// Lifecycle of a submitted run.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Waiting in the scheduler queue.
    Queued,
    /// Currently executing on the engine.
    Running,
    /// Finished; the outcome is available.
    Done(Box<ScenarioOutcome>),
}

impl JobState {
    /// The finished outcome, if the job is done.
    pub fn outcome(&self) -> Option<&ScenarioOutcome> {
        match self {
            JobState::Done(outcome) => Some(outcome),
            _ => None,
        }
    }
}

struct Inner {
    registry: ScenarioRegistry,
    scheduler: CostScheduler,
    costs: CostModel,
    jobs: HashMap<u64, JobState>,
    /// Finished tickets in completion order, for bounded retention.
    completed: VecDeque<u64>,
    /// Ticket → trace id, for `EXPLAIN <ticket>`; evicted alongside the
    /// completed-outcome retention window so the map stays bounded.
    traces: HashMap<u64, u64>,
    next_ticket: u64,
    next_seq: u64,
}

impl Inner {
    /// Records a finished outcome and evicts the oldest completed outcomes
    /// beyond the retention bound (queued/running jobs are never evicted).
    fn finish_job(&mut self, ticket: u64, outcome: ScenarioOutcome, retention: usize) {
        self.jobs.insert(ticket, JobState::Done(Box::new(outcome)));
        self.completed.push_back(ticket);
        if retention > 0 {
            while self.completed.len() > retention {
                if let Some(oldest) = self.completed.pop_front() {
                    self.jobs.remove(&oldest);
                    self.traces.remove(&oldest);
                }
            }
        }
    }
}

/// Callback invoked whenever a submitted job finishes (and on shutdown):
/// the reactor front-end registers its wakeup channel here so deferred
/// `WAIT` responses stream the moment their jobs complete.
pub type CompletionNotifier = Arc<dyn Fn() + Send + Sync>;

/// Pre-resolved handles into the engine's metrics registry for the
/// service's own instruments (resolved once — job paths never take the
/// registry lock).
struct ServiceMetrics {
    queue_depth: Arc<Gauge>,
    jobs_submitted: Arc<Counter>,
    jobs_completed: Arc<Counter>,
    job_queue_wait_us: Arc<Histogram>,
    job_run_us: Arc<Histogram>,
}

impl ServiceMetrics {
    fn new(engine: &Engine) -> ServiceMetrics {
        let metrics = engine.metrics();
        ServiceMetrics {
            queue_depth: metrics.gauge(
                "service_queue_depth",
                "Run requests currently waiting in the cost-aware scheduler.",
            ),
            jobs_submitted: metrics.counter(
                "service_jobs_submitted_total",
                "Run requests accepted by SUBMIT over the service lifetime.",
            ),
            jobs_completed: metrics.counter(
                "service_jobs_completed_total",
                "Run requests finished over the service lifetime.",
            ),
            job_queue_wait_us: metrics.histogram(
                "service_job_queue_wait_us",
                "Time a run request spent queued before execution, microseconds.",
            ),
            job_run_us: metrics.histogram(
                "service_job_run_us",
                "Execution wall time of one run request, microseconds.",
            ),
        }
    }
}

/// A persistent skyline-serving service: one engine, one shared cache,
/// many requests.
pub struct Service {
    config: ServiceConfig,
    engine: Engine,
    inner: Mutex<Inner>,
    stop: AtomicBool,
    notifiers: Mutex<Vec<CompletionNotifier>>,
    metrics: ServiceMetrics,
    started: Instant,
}

impl Service {
    /// Creates a service with a cold cache.
    pub fn new(config: ServiceConfig) -> Self {
        let engine = Engine::new(config.engine.clone());
        let metrics = ServiceMetrics::new(&engine);
        Service {
            inner: Mutex::new(Inner {
                registry: ScenarioRegistry::new(),
                scheduler: CostScheduler::new(),
                costs: CostModel::new(config.cost_smoothing),
                jobs: HashMap::new(),
                completed: VecDeque::new(),
                traces: HashMap::new(),
                next_ticket: 1,
                next_seq: 0,
            }),
            engine,
            config,
            stop: AtomicBool::new(false),
            notifiers: Mutex::new(Vec::new()),
            metrics,
            started: Instant::now(),
        }
    }

    /// How long this service has been up.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Run requests finished over the service lifetime (monotonic — not
    /// bounded by the completed-outcome retention window).
    pub fn jobs_completed(&self) -> u64 {
        self.metrics.jobs_completed.get()
    }

    /// Creates a service whose shared cache is warm-started from a snapshot
    /// file written by [`Service::snapshot_to`]. The snapshot's namespace
    /// guard is seeded into the engine as well, so a substrate that is
    /// incompatible with what originally filled a namespace (e.g. refreshed
    /// data under the old name) is rejected at registration instead of
    /// silently being served the stale evaluations.
    pub fn from_snapshot(config: ServiceConfig, path: &Path) -> Result<Self, ServiceError> {
        let service = Service::new(config);
        let (_imported, namespace_fingerprints) =
            snapshot::load_from_path(service.engine.cache(), path)?;
        service
            .engine
            .seed_namespace_fingerprints(&namespace_fingerprints);
        Ok(service)
    }

    /// The owned engine (for direct suite runs or telemetry).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a scenario under its name; see
    /// [`ScenarioRegistry::register`] for the namespace guarantees. On a
    /// warm-started service the namespace is additionally checked against
    /// the fingerprint recorded by the *snapshotting* process — the cached
    /// evaluations under this namespace belong to that substrate, so an
    /// incompatible one (refreshed data included) is rejected here instead
    /// of being served stale results.
    pub fn register(&self, scenario: Scenario) -> Result<(), ServiceError> {
        let key = modis_engine::SharedEvalCache::namespace_key(scenario.namespace());
        if let Some(recorded) = self.engine.namespace_fingerprint(key) {
            if recorded != scenario.substrate.fingerprint() {
                return Err(ServiceError::NamespaceConflict {
                    namespace: scenario.namespace().to_string(),
                    registered_by: "an earlier process (restored snapshot)".to_string(),
                });
            }
        }
        self.lock().registry.register(scenario)
    }

    /// Registered scenario names (sorted).
    pub fn scenario_names(&self) -> Vec<String> {
        self.lock()
            .registry
            .names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Enqueues a run of a registered scenario and returns its ticket.
    /// Rejected once [`Service::shutdown`] has been called — no worker will
    /// drain the queue any more, so the ticket would hang forever.
    ///
    /// A fresh trace is minted for the run; to stitch it into a trace the
    /// caller already carries (a routed request arriving with a `CTX` wire
    /// prefix), use [`Service::submit_traced`].
    pub fn submit(&self, name: &str) -> Result<Ticket, ServiceError> {
        let ctx = self.engine.tracer().mint_context();
        self.submit_traced(name, ctx)
    }

    /// [`Service::submit`] under an explicit trace context: the request is
    /// carried through the queue onto the executor thread under `ctx`, so
    /// its queue-wait, job, scenario, and valuation spans all stitch into
    /// the submitter's trace — across the thread hop and, when `ctx`
    /// arrived over the wire, across the process hop too.
    pub fn submit_traced(&self, name: &str, ctx: TraceContext) -> Result<Ticket, ServiceError> {
        let mut inner = self.lock();
        // Checked *under* the inner lock: shutdown() also takes it while
        // setting the flag, so a submission either completes before the
        // flag is visible (and the worker's final drain executes it) or
        // observes the flag and is rejected — never stranded in between.
        if self.is_stopped() {
            return Err(ServiceError::Stopped);
        }
        let registered = inner.registry.require(name)?;
        let namespace = registered.scenario.namespace().to_string();
        // Prior before the first observation: the configured state budget —
        // an upper bound on paid valuations, comparable across scenarios.
        let prior = registered.scenario.config.max_states as f64;
        let estimated_cost = inner.costs.estimate(name, prior);
        let ticket = Ticket(inner.next_ticket);
        inner.next_ticket += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.scheduler.push(QueuedRequest {
            ticket: ticket.0,
            scenario: name.to_string(),
            namespace,
            seq,
            estimated_cost,
            bypassed: 0,
            submitted_at: Instant::now(),
            trace: ctx,
        });
        inner.jobs.insert(ticket.0, JobState::Queued);
        inner.traces.insert(ticket.0, ctx.trace_id);
        self.metrics.jobs_submitted.inc();
        self.metrics.queue_depth.set(inner.scheduler.len() as i64);
        Ok(ticket)
    }

    /// Enqueues several runs at once, returning tickets in input order.
    pub fn submit_many<'a>(
        &self,
        names: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<Ticket>, ServiceError> {
        names.into_iter().map(|n| self.submit(n)).collect()
    }

    /// The current state of a submitted run.
    pub fn poll(&self, ticket: Ticket) -> Result<JobState, ServiceError> {
        self.lock()
            .jobs
            .get(&ticket.0)
            .cloned()
            .ok_or(ServiceError::UnknownTicket(ticket.0))
    }

    /// The trace id the ticket's run was submitted under (`EXPLAIN`
    /// resolves tickets to traces through this). `None` once the ticket
    /// has fallen off the completed-outcome retention window.
    pub fn trace_of(&self, ticket: Ticket) -> Option<u64> {
        self.lock().traces.get(&ticket.0).copied()
    }

    /// Number of runs waiting in the queue.
    pub fn pending(&self) -> usize {
        self.lock().scheduler.len()
    }

    /// Drains the queue: prewarms start states in batched passes (when
    /// configured), then executes every queued run in scheduler order on
    /// the calling thread. Returns the number of runs executed.
    ///
    /// This is the service's worker step — call it directly for
    /// deterministic draining (tests, benches) or let a
    /// [`Service::spawn_worker`] thread call it in a loop.
    pub fn run_pending(&self) -> usize {
        if self.config.prewarm_start_states {
            self.prewarm_queued();
        }
        let mut executed = 0;
        loop {
            let (request, scenario) = {
                let mut inner = self.lock();
                let Some(request) = inner.scheduler.pop() else {
                    break;
                };
                self.metrics.queue_depth.set(inner.scheduler.len() as i64);
                let scenario = match inner.registry.get(&request.scenario) {
                    Some(registered) => registered.scenario.clone(),
                    // Registry entries are never removed, so a queued name
                    // always resolves; guard anyway to stay panic-free.
                    None => continue,
                };
                inner.jobs.insert(request.ticket, JobState::Running);
                (request, scenario)
            };
            let tracer = self.engine.tracer();
            let queue_wait = request.submitted_at.elapsed();
            self.metrics.job_queue_wait_us.record_duration(queue_wait);
            // Retroactive span: the wait already happened, so record it with
            // its true start instant rather than opening a live span now.
            tracer.record_at(
                "queue_wait",
                tracer.child_context(request.trace),
                request.submitted_at,
                queue_wait,
            );
            let run_start = Instant::now();
            let job_span = tracer.span_with("job", request.trace);
            let job_ctx = job_span.context();
            let outcome = self.engine.run_scenario_traced(&scenario, job_ctx);
            drop(job_span);
            self.metrics.job_run_us.record_duration(run_start.elapsed());
            self.metrics.jobs_completed.inc();
            let observed = outcome.valuation_cost() as f64;
            // Predicted-vs-observed cost accounting per namespace: the
            // scheduler's whole premise is that EWMA estimates track real
            // paid cost, so expose both sides of that bet.
            let registry = self.engine.metrics();
            let labels = [("namespace", request.namespace.as_str())];
            registry
                .counter_with(
                    "service_predicted_cost_total",
                    "Scheduler-estimated paid valuation cost of executed jobs, per namespace.",
                    &labels,
                )
                .add(request.estimated_cost.max(0.0).round() as u64);
            registry
                .counter_with(
                    "service_observed_cost_total",
                    "Observed paid valuation cost of executed jobs, per namespace.",
                    &labels,
                )
                .add(observed.max(0.0).round() as u64);
            {
                let mut inner = self.lock();
                inner.costs.observe(&request.scenario, observed);
                inner.finish_job(request.ticket, outcome, self.config.completed_retention);
            }
            // End-to-end latency (wait + run) against the slow threshold:
            // the trace id is enough to stitch the full timeline later.
            let total = request.submitted_at.elapsed();
            if total >= self.config.slow_request_threshold {
                tracer.note_slow(request.trace.trace_id, total, &request.scenario);
            }
            // Per-job (not per-drain), so `WAIT` watchers stream each
            // completion as it happens instead of at the end of the wave.
            self.notify_completion();
            executed += 1;
        }
        executed
    }

    /// Registers the callbacks invoked after every finished job and on
    /// shutdown (the reactor wakeup channels). One *front-end* at a time:
    /// a later registration replaces every earlier notifier, so a daemon
    /// that re-binds does not leave stale wakeup handles behind. A
    /// multi-reactor front-end registers its first wakeup here and fans
    /// the rest out via [`add_completion_notifier`](Self::add_completion_notifier).
    pub fn set_completion_notifier(&self, notifier: CompletionNotifier) {
        *self
            .notifiers
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = vec![notifier];
    }

    /// Appends one more completion notifier without disturbing the ones
    /// already registered — the fan-out path for a front-end with N
    /// reactor wakeup channels (every reactor must wake: the service
    /// cannot know which one pins the waiting connection).
    pub fn add_completion_notifier(&self, notifier: CompletionNotifier) {
        self.notifiers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(notifier);
    }

    /// Removes every completion notifier (a stopping front-end detaching
    /// its wakeup channels).
    pub fn clear_completion_notifier(&self) {
        self.notifiers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    fn notify_completion(&self) {
        let notifiers = self
            .notifiers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        for notify in &notifiers {
            notify();
        }
    }

    /// Batch-valuates the start states of every queued scenario, one
    /// thread-pool pass per namespace, so the searches themselves open on
    /// cache hits. Skips scenarios whose namespace has already been warmed
    /// by an earlier pass within this call.
    fn prewarm_queued(&self) {
        let requests: Vec<ValuationRequest> = {
            let inner = self.lock();
            inner
                .scheduler
                .queued()
                .iter()
                .filter_map(|req| {
                    let registered = inner.registry.get(&req.scenario)?;
                    Some(ValuationRequest {
                        scenario: req.scenario.clone(),
                        states: start_states(&registered.scenario),
                    })
                })
                .collect()
        };
        if !requests.is_empty() {
            // Errors cannot occur here (every name came from the registry),
            // but a failed prewarm must never block the runs themselves.
            let _ = self.valuate_many(&requests);
        }
    }

    /// Valuates a batch of states under one registered scenario's
    /// namespace in a single thread-pool pass.
    pub fn valuate_batch(
        &self,
        name: &str,
        states: &[StateBitmap],
    ) -> Result<BatchValuation, ServiceError> {
        let (namespace, substrate) = {
            let inner = self.lock();
            let registered = inner.registry.require(name)?;
            (
                registered.scenario.namespace().to_string(),
                registered.scenario.substrate.clone(),
            )
        };
        Ok(self.engine.valuate_states(&namespace, &substrate, states))
    }

    /// Valuates many clients' requests with the fewest engine passes: all
    /// requests sharing a cache namespace are grouped into one thread-pool
    /// pass, and the evaluations are scattered back per request (aligned
    /// with each request's states).
    pub fn valuate_many(
        &self,
        requests: &[ValuationRequest],
    ) -> Result<Vec<Vec<SharedEvaluation>>, ServiceError> {
        let batches = {
            let inner = self.lock();
            group_requests(&inner.registry, requests)?
        };
        let mut results: Vec<Vec<SharedEvaluation>> = requests
            .iter()
            .map(|r| Vec::with_capacity(r.states.len()))
            .collect();
        for batch in batches {
            let valuation =
                self.engine
                    .valuate_states(&batch.namespace, &batch.substrate, &batch.states);
            for (request_index, offset, len) in batch.spans {
                results[request_index]
                    .extend_from_slice(&valuation.evaluations[offset..offset + len]);
            }
        }
        Ok(results)
    }

    /// Merged cache telemetry: shared-cache counters plus the substrate
    /// memos of every executed scenario.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Persists the shared evaluation cache and the engine's namespace
    /// guard to `path`, returning the snapshot size in bytes. Take
    /// snapshots between `run_pending` waves for an exact
    /// (eviction-order-preserving) capture.
    pub fn snapshot_to(&self, path: &Path) -> Result<usize, ServiceError> {
        let _span = self.engine.tracer().span("snapshot");
        Ok(snapshot::save_to_path(
            self.engine.cache(),
            &self.engine.namespace_fingerprints(),
            path,
        )?)
    }

    /// Persists only the given cache namespaces (plus their guard pairs
    /// and a manifest of the names) to `path` as a namespace *shipment* —
    /// the portable unit the cluster layer moves between shard processes
    /// when namespace ownership rebalances. Returns the size in bytes.
    pub fn snapshot_namespaces_to(
        &self,
        namespaces: &[String],
        path: &Path,
    ) -> Result<usize, ServiceError> {
        let keys: Vec<u64> = namespaces
            .iter()
            .map(|ns| modis_engine::SharedEvalCache::namespace_key(ns))
            .collect();
        let guards: Vec<(u64, u64)> = self
            .engine
            .namespace_fingerprints()
            .into_iter()
            .filter(|(key, _)| keys.contains(key))
            .collect();
        Ok(snapshot::save_shipment_to_path(
            namespaces,
            self.engine.cache(),
            &keys,
            &guards,
            path,
        )?)
    }

    /// Encodes the given cache namespaces (plus their guard pairs and a
    /// manifest of the names) as in-memory shipment bytes — the payload
    /// the `SHIP` wire verb carries shard-to-shard without touching a
    /// shared filesystem. Identical format to
    /// [`Service::snapshot_namespaces_to`], minus the file.
    pub fn shipment_bytes(&self, namespaces: &[String]) -> Vec<u8> {
        let keys: Vec<u64> = namespaces
            .iter()
            .map(|ns| modis_engine::SharedEvalCache::namespace_key(ns))
            .collect();
        let guards: Vec<(u64, u64)> = self
            .engine
            .namespace_fingerprints()
            .into_iter()
            .filter(|(key, _)| keys.contains(key))
            .collect();
        snapshot::encode_shipment(namespaces, self.engine.cache(), &keys, &guards)
    }

    /// The stable content digest of the given cache namespaces
    /// ([`modis_engine::SharedEvalCache::namespace_digest`]): equal
    /// digests on two shards mean their resident state for those
    /// namespaces is identical, so a replication driver can skip the
    /// shipment entirely.
    pub fn namespace_digest(&self, namespaces: &[String]) -> u64 {
        let keys: Vec<u64> = namespaces
            .iter()
            .map(|ns| modis_engine::SharedEvalCache::namespace_key(ns))
            .collect();
        self.engine.cache().namespace_digest(&keys)
    }

    /// Merges a snapshot or namespace shipment from `path` into the live
    /// cache (hashed insertion — no slot-geometry replay, safe while
    /// serving), returning the number of evaluations merged.
    ///
    /// Guard pairs carried by the file are validated against this engine's
    /// namespace guard *before* anything is merged: a shipment whose
    /// fingerprint disagrees with what this process has recorded for the
    /// same namespace describes a different search space, and merging it
    /// would poison valuations — the whole file is rejected instead.
    pub fn restore_from(&self, path: &Path) -> Result<usize, ServiceError> {
        let bytes = std::fs::read(path).map_err(snapshot::SnapshotError::Io)?;
        self.restore_from_bytes(&bytes)
    }

    /// [`Service::restore_from`] for in-memory bytes — the receive side of
    /// the `SHIP` wire verb. Same wholesale guard validation: a
    /// fingerprint conflict rejects the entire payload and merges nothing.
    pub fn restore_from_bytes(&self, bytes: &[u8]) -> Result<usize, ServiceError> {
        let _span = self.engine.tracer().span("restore");
        let decoded = snapshot::decode_any(bytes)?;
        for &(key, fingerprint) in &decoded.namespace_fingerprints {
            if let Some(recorded) = self.engine.namespace_fingerprint(key) {
                if recorded != fingerprint {
                    return Err(ServiceError::NamespaceConflict {
                        namespace: format!("key {key:#x}"),
                        registered_by: "this process (conflicting shipment rejected)".to_string(),
                    });
                }
            }
        }
        let merged = self.engine.cache().merge_exports(decoded.shards);
        self.engine
            .seed_namespace_fingerprints(&decoded.namespace_fingerprints);
        Ok(merged)
    }

    /// Signals the background worker (and any front-end loops) to stop.
    /// Taken under the inner lock so it serialises against in-flight
    /// [`Service::submit`] calls; together with the worker's final drain,
    /// every accepted submission is guaranteed to execute.
    pub fn shutdown(&self) {
        {
            let _inner = self.lock();
            self.stop.store(true, Ordering::SeqCst);
        }
        // A parked reactor must observe the flag now, not at its timeout.
        self.notify_completion();
    }

    /// Whether [`Service::shutdown`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Spawns the background worker: a thread that drains the queue via
    /// [`Service::run_pending`] and naps [`ServiceConfig::worker_poll`]
    /// when idle, until [`Service::shutdown`]. After observing the stop
    /// flag it drains once more, so a submission that raced the shutdown
    /// (accepted before the flag became visible) still executes instead of
    /// sitting queued forever.
    pub fn spawn_worker(self: &Arc<Self>) -> std::thread::JoinHandle<()> {
        let service = Arc::clone(self);
        std::thread::spawn(move || {
            while !service.is_stopped() {
                if service.run_pending() == 0 {
                    std::thread::sleep(service.config.worker_poll);
                }
            }
            service.run_pending();
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modis_core::config::ModisConfig;
    use modis_core::estimator::EstimatorMode;
    use modis_core::substrate::mock::MockSubstrate;
    use modis_core::substrate::Substrate;
    use modis_engine::Algorithm;

    fn mock_service() -> Service {
        let service = Service::new(ServiceConfig::default());
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(8));
        let config = ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_max_states(60)
            .with_max_level(4);
        for (name, alg) in [
            ("apx", Algorithm::Apx),
            ("bi", Algorithm::Bi),
            ("div", Algorithm::Div),
        ] {
            service
                .register(
                    Scenario::new(name, substrate.clone(), alg, config.clone())
                        .with_cache_namespace("mock-pool"),
                )
                .unwrap();
        }
        service
    }

    #[test]
    fn submit_run_poll_lifecycle() {
        let service = mock_service();
        let ticket = service.submit("apx").unwrap();
        assert!(matches!(service.poll(ticket).unwrap(), JobState::Queued));
        assert_eq!(service.pending(), 1);
        assert_eq!(service.run_pending(), 1);
        assert_eq!(service.pending(), 0);
        let state = service.poll(ticket).unwrap();
        let outcome = state.outcome().expect("job finished");
        assert!(!outcome.result.is_empty());
        assert!(matches!(
            service.poll(Ticket(999)),
            Err(ServiceError::UnknownTicket(999))
        ));
    }

    #[test]
    fn second_wave_is_answered_from_the_warm_cache() {
        let service = mock_service();
        service.submit("apx").unwrap();
        service.run_pending();
        let ticket = service.submit("apx").unwrap();
        service.run_pending();
        let state = service.poll(ticket).unwrap();
        let outcome = state.outcome().unwrap();
        assert_eq!(outcome.result.stats.oracle_calls, 0, "no retraining");
        assert!(outcome.shared_hits() > 0);
    }

    #[test]
    fn completed_outcomes_are_retained_up_to_the_bound() {
        let service = Service::new(ServiceConfig::default().with_completed_retention(2));
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(6));
        service
            .register(
                Scenario::new(
                    "apx",
                    substrate,
                    Algorithm::Apx,
                    ModisConfig::default()
                        .with_estimator(EstimatorMode::Oracle)
                        .with_max_states(20),
                )
                .with_cache_namespace("pool"),
            )
            .unwrap();
        let tickets: Vec<Ticket> = (0..3).map(|_| service.submit("apx").unwrap()).collect();
        service.run_pending();
        // The oldest finished outcome fell off the retention window…
        assert!(matches!(
            service.poll(tickets[0]),
            Err(ServiceError::UnknownTicket(_))
        ));
        // …the newest two are still pollable.
        assert!(service.poll(tickets[1]).unwrap().outcome().is_some());
        assert!(service.poll(tickets[2]).unwrap().outcome().is_some());
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        let service = mock_service();
        service.shutdown();
        assert!(matches!(service.submit("apx"), Err(ServiceError::Stopped)));
    }

    #[test]
    fn unknown_submissions_are_rejected() {
        let service = mock_service();
        assert!(matches!(
            service.submit("nope"),
            Err(ServiceError::UnknownScenario(_))
        ));
    }

    #[test]
    fn batched_and_single_valuations_agree() {
        let service = mock_service();
        let states: Vec<StateBitmap> = (0..6).map(|i| StateBitmap::full(8).flipped(i)).collect();
        let batch = service.valuate_batch("apx", &states).unwrap();
        assert_eq!(batch.evaluations.len(), 6);
        assert_eq!(batch.trained, 6);
        // The same states again through valuate_many: all hits, same values.
        let again = service
            .valuate_many(&[
                ValuationRequest {
                    scenario: "bi".into(),
                    states: states[..3].to_vec(),
                },
                ValuationRequest {
                    scenario: "apx".into(),
                    states: states[3..].to_vec(),
                },
            ])
            .unwrap();
        assert_eq!(again[0].as_slice(), &batch.evaluations[..3]);
        assert_eq!(again[1].as_slice(), &batch.evaluations[3..]);
    }

    #[test]
    fn worker_thread_drains_submissions() {
        let service = Arc::new(mock_service());
        let worker = service.spawn_worker();
        let ticket = service.submit("div").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if let JobState::Done(_) = service.poll(ticket).unwrap() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "worker too slow");
            std::thread::sleep(Duration::from_millis(5));
        }
        service.shutdown();
        worker.join().unwrap();
    }
}
