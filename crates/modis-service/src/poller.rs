//! Readiness discovery for the front-end: a zero-dependency wrapper over
//! `epoll(7)`.
//!
//! The workspace vendors no `libc` and no `mio`, so the reactor's original
//! sweep discovered readiness by *attempting* a syscall on every open
//! connection and treating [`WouldBlock`](std::io::ErrorKind::WouldBlock)
//! as "not ready" — O(open connections) per sweep. This module provides
//! the kernel's answer instead: register every descriptor once, then each
//! sweep asks "which of these are ready?" and touches only those —
//! O(ready) per sweep, flat in the number of idle connections.
//!
//! Keeping the no-libc stance, the epoll calls go straight to the kernel
//! through inline-assembly syscall stubs (the same way the vendored crates
//! shim their platform layers): `epoll_create1`/`epoll_ctl`/`epoll_pwait`
//! on Linux x86-64 and AArch64. Two fallbacks preserve portability:
//!
//! * **`poll(2)`** (via `ppoll`) — same kernels, used when an epoll
//!   instance cannot be created, or when `MODIS_POLLER=poll` forces it
//!   (diagnostics, and how the test suite exercises the fallback). O(open)
//!   per wait, but still a single syscall rather than one per connection.
//! * **sweep** — any platform without those syscall stubs: every
//!   registered descriptor is reported ready each wait (after a short
//!   bounded nap), which degrades exactly to the old attempt-everything
//!   sweep. Correct everywhere, fast nowhere.
//!
//! All backends are **level-triggered**: a descriptor keeps reporting
//! ready until the condition is consumed. Callers therefore must drop
//! interest they cannot act on (e.g. a backpressured connection must
//! deregister read interest) or every wait returns immediately.

use std::io;
use std::time::Duration;

/// The raw descriptor type registered with a [`Poller`] (`RawFd` on Unix).
#[cfg(unix)]
pub type RawSource = std::os::unix::io::RawFd;
/// The raw descriptor type registered with a [`Poller`] (`RawSocket` on
/// Windows).
#[cfg(not(unix))]
pub type RawSource = u64;

/// Extracts the registrable raw descriptor from a socket type.
#[cfg(unix)]
pub fn source<T: std::os::unix::io::AsRawFd>(io: &T) -> RawSource {
    io.as_raw_fd()
}

/// Extracts the registrable raw descriptor from a socket type.
#[cfg(not(unix))]
pub fn source<T: std::os::windows::io::AsRawSocket>(io: &T) -> RawSource {
    io.as_raw_socket()
}

/// Which readiness conditions a registration subscribes to. Error and
/// hangup conditions are always reported, even for an empty interest —
/// a connection parked with [`Interest::NONE`] still learns its peer died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor has bytes to read (or EOF).
    pub read: bool,
    /// Wake when the descriptor can accept writes.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// No readiness subscriptions (error/hangup still reported).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One ready descriptor, as returned by [`Poller::wait`]. Error and
/// hangup conditions set both flags so the owner attempts I/O and
/// discovers the failure through the normal read/write paths.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: usize,
    /// The descriptor is readable (data, EOF, error or hangup pending).
    pub readable: bool,
    /// The descriptor is writable (or in an error/hangup state).
    pub writable: bool,
}

/// Most events one [`Poller::wait`] call surfaces; a level-triggered
/// backend re-reports anything that did not fit on the next wait.
const MAX_EVENTS: usize = 256;

/// Raw syscall stubs for the epoll/ppoll backends — Linux on x86-64 or
/// AArch64 only (the only targets with stable inline-assembly syscall
/// conventions this module carries).
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::io;
    use std::time::Duration;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const PPOLL: usize = 271;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const CLOSE: usize = 57;
        pub const PPOLL: usize = 73;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EPOLL_CREATE1: usize = 20;
    }

    /// One 6-argument syscall. Returns the kernel's raw result: negative
    /// values in `[-4095, -1]` are `-errno`.
    ///
    /// # Safety
    /// The caller must uphold the invariants of the specific syscall
    /// (valid pointers with correct lengths for the kernel to read/write).
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(n: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    /// One 6-argument syscall (AArch64 `svc #0` convention).
    ///
    /// # Safety
    /// Same contract as the x86-64 variant.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(n: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") 0usize,
            options(nostack)
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// Mirror of the kernel's `struct epoll_event`. Packed on x86-64 only
    /// (the kernel ABI there omits padding); naturally aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// Mirror of the kernel's `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }

    pub const EPOLL_CLOEXEC: usize = 0x8_0000;
    pub const EPOLL_CTL_ADD: usize = 1;
    pub const EPOLL_CTL_DEL: usize = 2;
    pub const EPOLL_CTL_MOD: usize = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    pub fn epoll_create1() -> io::Result<i32> {
        check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0) }).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(epfd: i32, op: usize, fd: i32, event: &mut EpollEvent) -> io::Result<()> {
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as usize,
                op,
                fd as usize,
                event as *mut EpollEvent as usize,
                0,
            )
        })
        .map(|_| ())
    }

    /// `epoll_pwait` with a NULL sigmask (identical to `epoll_wait`,
    /// which AArch64 does not provide). `timeout_ms < 0` blocks.
    pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        check(unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as isize as usize,
                0,
            )
        })
    }

    /// `ppoll` with a NULL sigmask (`poll(2)` semantics; AArch64 does not
    /// provide plain `poll`). A `None` timeout blocks.
    pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let ts = timeout.map(|d| Timespec {
            sec: d.as_secs().min(i64::MAX as u64) as i64,
            nsec: i64::from(d.subsec_nanos()),
        });
        let ts_ptr = ts
            .as_ref()
            .map_or(0usize, |t| t as *const Timespec as usize);
        check(unsafe {
            syscall6(
                nr::PPOLL,
                fds.as_mut_ptr() as usize,
                fds.len(),
                ts_ptr,
                0,
                0,
            )
        })
    }

    pub fn close(fd: i32) {
        // Best-effort: nothing to do about a failed close of our own epoll fd.
        let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0) };
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
use self::linux_backends::{EpollBackend, PollBackend};

/// The epoll and ppoll backends (Linux with syscall stubs only).
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod linux_backends {
    use super::{sys, Event, Interest, RawSource, MAX_EVENTS};
    use std::io;
    use std::time::Duration;

    fn epoll_bits(interest: Interest) -> u32 {
        let mut bits = 0u32;
        if interest.read {
            bits |= sys::EPOLLIN;
        }
        if interest.write {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    /// O(ready) readiness via an epoll instance owned by this backend.
    pub struct EpollBackend {
        epfd: i32,
    }

    impl EpollBackend {
        pub fn new() -> io::Result<EpollBackend> {
            sys::epoll_create1().map(|epfd| EpollBackend { epfd })
        }

        fn ctl(
            &self,
            op: usize,
            fd: RawSource,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            let mut event = sys::EpollEvent {
                events: epoll_bits(interest),
                data: token as u64,
            };
            sys::epoll_ctl(self.epfd, op, fd, &mut event)
        }

        pub fn register(&self, fd: RawSource, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(
            &self,
            fd: RawSource,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawSource) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let mut buf = [sys::EpollEvent::default(); MAX_EVENTS];
            // Round a sub-millisecond timeout *up*: rounding to 0 would
            // turn a short park into a busy spin.
            let ms: i32 = match timeout {
                None => -1,
                Some(d) if d.is_zero() => 0,
                Some(d) => d.as_millis().clamp(1, i32::MAX as u128) as i32,
            };
            match sys::epoll_wait(self.epfd, &mut buf, ms) {
                Ok(n) => {
                    for event in &buf[..n] {
                        let bits = event.events;
                        let hangup = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                        events.push(Event {
                            token: event.data as usize,
                            readable: bits & sys::EPOLLIN != 0 || hangup,
                            writable: bits & sys::EPOLLOUT != 0 || hangup,
                        });
                    }
                    Ok(())
                }
                // A signal is not an event; the caller's loop re-checks its
                // stop flag and waits again.
                Err(err) if err.kind() == io::ErrorKind::Interrupted => Ok(()),
                Err(err) => Err(err),
            }
        }
    }

    impl Drop for EpollBackend {
        fn drop(&mut self) {
            sys::close(self.epfd);
        }
    }

    /// O(open) readiness via one `ppoll` over the registered set — the
    /// fallback when no epoll instance is available.
    pub struct PollBackend {
        entries: Vec<(RawSource, usize, Interest)>,
    }

    impl PollBackend {
        pub fn new() -> PollBackend {
            PollBackend {
                entries: Vec::new(),
            }
        }

        pub fn register(
            &mut self,
            fd: RawSource,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            if self.entries.iter().any(|&(f, ..)| f == fd) {
                return Err(io::Error::from_raw_os_error(17)); // EEXIST, like epoll
            }
            self.entries.push((fd, token, interest));
            Ok(())
        }

        pub fn reregister(
            &mut self,
            fd: RawSource,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            match self.entries.iter_mut().find(|&&mut (f, ..)| f == fd) {
                Some(entry) => {
                    *entry = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::from_raw_os_error(2)), // ENOENT, like epoll
            }
        }

        pub fn deregister(&mut self, fd: RawSource) -> io::Result<()> {
            let before = self.entries.len();
            self.entries.retain(|&(f, ..)| f != fd);
            if self.entries.len() == before {
                return Err(io::Error::from_raw_os_error(2)); // ENOENT
            }
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let mut fds: Vec<sys::PollFd> = self
                .entries
                .iter()
                .map(|&(fd, _, interest)| sys::PollFd {
                    fd,
                    events: {
                        let mut bits = 0i16;
                        if interest.read {
                            bits |= sys::POLLIN;
                        }
                        if interest.write {
                            bits |= sys::POLLOUT;
                        }
                        bits
                    },
                    revents: 0,
                })
                .collect();
            match sys::poll(&mut fds, timeout) {
                Ok(_) => {}
                Err(err) if err.kind() == io::ErrorKind::Interrupted => return Ok(()),
                Err(err) => return Err(err),
            }
            for (pollfd, &(_, token, _)) in fds.iter().zip(&self.entries) {
                if pollfd.revents == 0 {
                    continue;
                }
                if events.len() >= MAX_EVENTS {
                    break; // level-triggered: re-reported next wait
                }
                let hangup = pollfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                events.push(Event {
                    token,
                    readable: pollfd.revents & sys::POLLIN != 0 || hangup,
                    writable: pollfd.revents & sys::POLLOUT != 0 || hangup,
                });
            }
            Ok(())
        }
    }
}

/// Portable degraded backend: every registered descriptor is reported
/// ready (per its interest) on every wait, after a short bounded nap —
/// behaviourally the old attempt-every-connection sweep.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
struct SweepBackend {
    entries: Vec<(RawSource, usize, Interest)>,
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
impl SweepBackend {
    fn register(&mut self, fd: RawSource, token: usize, interest: Interest) -> io::Result<()> {
        self.entries.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawSource, token: usize, interest: Interest) -> io::Result<()> {
        match self.entries.iter_mut().find(|&&mut (f, ..)| f == fd) {
            Some(entry) => {
                *entry = (fd, token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawSource) -> io::Result<()> {
        self.entries.retain(|&(f, ..)| f != fd);
        Ok(())
    }

    fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let nap = timeout
            .unwrap_or(Duration::from_micros(500))
            .min(Duration::from_micros(500));
        if !nap.is_zero() {
            std::thread::sleep(nap);
        }
        for &(_, token, interest) in self.entries.iter().take(MAX_EVENTS) {
            if interest.read || interest.write {
                events.push(Event {
                    token,
                    readable: interest.read,
                    writable: interest.write,
                });
            }
        }
        Ok(())
    }
}

enum Backend {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Epoll(EpollBackend),
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Poll(PollBackend),
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    Sweep(SweepBackend),
}

/// A readiness selector: register descriptors with a token and an
/// [`Interest`], then [`wait`](Poller::wait) for the ready subset.
///
/// Level-triggered on every backend. One `Poller` belongs to one thread's
/// event loop; registration and waiting are `&mut self` by design.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Opens the best available backend: epoll where the syscall stubs
    /// exist (unless `MODIS_POLLER=poll` forces the fallback), `poll(2)`
    /// when epoll is unavailable, and the degraded sweep backend on
    /// platforms without either.
    pub fn new() -> io::Result<Poller> {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            if std::env::var("MODIS_POLLER").is_ok_and(|v| v == "poll") {
                return Ok(Poller {
                    backend: Backend::Poll(PollBackend::new()),
                });
            }
            Ok(match EpollBackend::new() {
                Ok(epoll) => Poller {
                    backend: Backend::Epoll(epoll),
                },
                Err(_) => Poller {
                    backend: Backend::Poll(PollBackend::new()),
                },
            })
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            Ok(Poller {
                backend: Backend::Sweep(SweepBackend {
                    entries: Vec::new(),
                }),
            })
        }
    }

    /// Which backend this poller runs on: `"epoll"`, `"poll"` or
    /// `"sweep"`.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(_) => "epoll",
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Poll(_) => "poll",
            #[cfg(not(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            Backend::Sweep(_) => "sweep",
        }
    }

    /// Starts watching `fd`, reporting its readiness under `token`.
    /// Registering an already-registered descriptor is an error.
    pub fn register(&mut self, fd: RawSource, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(b) => b.register(fd, token, interest),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Poll(b) => b.register(fd, token, interest),
            #[cfg(not(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            Backend::Sweep(b) => b.register(fd, token, interest),
        }
    }

    /// Replaces the token and interest of an already-registered `fd`.
    pub fn reregister(
        &mut self,
        fd: RawSource,
        token: usize,
        interest: Interest,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(b) => b.reregister(fd, token, interest),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Poll(b) => b.reregister(fd, token, interest),
            #[cfg(not(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            Backend::Sweep(b) => b.reregister(fd, token, interest),
        }
    }

    /// Stops watching `fd`. Must be called *before* the descriptor is
    /// closed when using the `poll` fallback (epoll forgets closed
    /// descriptors on its own; a `pollfd` set does not).
    pub fn deregister(&mut self, fd: RawSource) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(b) => b.deregister(fd),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Poll(b) => b.deregister(fd),
            #[cfg(not(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            Backend::Sweep(b) => b.deregister(fd),
        }
    }

    /// Clears `events` and fills it with the descriptors ready now,
    /// blocking up to `timeout` (`None` blocks until something is ready).
    /// An interrupted wait (EINTR) returns `Ok` with no events — callers
    /// re-check their stop condition and wait again.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(b) => b.wait(events, timeout),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Poll(b) => b.wait(events, timeout),
            #[cfg(not(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            Backend::Sweep(b) => b.wait(events, timeout),
        }
    }

    /// A poller forced onto the `poll(2)` fallback backend, so tests can
    /// exercise it deterministically regardless of environment.
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[cfg(test)]
    pub(crate) fn new_poll_fallback() -> Poller {
        Poller {
            backend: Backend::Poll(PollBackend::new()),
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend_name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let local = tx.local_addr().unwrap();
        let rx = loop {
            let (rx, peer) = listener.accept().unwrap();
            if peer == local {
                break rx;
            }
        };
        (tx, rx)
    }

    fn wait_for_token(poller: &mut Poller, token: usize) -> Event {
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if let Some(event) = events.iter().find(|e| e.token == token) {
                return *event;
            }
        }
        panic!("token {token} never became ready");
    }

    fn exercise(mut poller: Poller) {
        let (mut tx, rx) = socket_pair();
        poller.register(source(&rx), 7, Interest::READ).unwrap();

        // Nothing pending: a short wait returns empty, promptly.
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty(), "unexpected events: {events:?}");
        assert!(start.elapsed() < Duration::from_secs(2));

        // A byte arrives: the registered token reports readable, and keeps
        // reporting it (level-triggered) until consumed.
        tx.write_all(&[1]).unwrap();
        let event = wait_for_token(&mut poller, 7);
        assert!(event.readable);
        let event = wait_for_token(&mut poller, 7);
        assert!(event.readable);

        // Interest change to write-only: the unread byte no longer wakes
        // us as readable, but the idle socket is writable.
        poller.reregister(source(&rx), 9, Interest::WRITE).unwrap();
        let event = wait_for_token(&mut poller, 9);
        assert!(event.writable);
        assert!(!events.iter().any(|e| e.token == 7));

        // Deregistered: silence, even with the byte still pending.
        poller.deregister(source(&rx)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "deregistered fd reported: {events:?}");

        // Re-registering after deregistration works.
        poller.register(source(&rx), 11, Interest::READ).unwrap();
        let event = wait_for_token(&mut poller, 11);
        assert!(event.readable);
    }

    #[test]
    fn default_backend_reports_readiness_transitions() {
        let poller = Poller::new().unwrap();
        exercise(poller);
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn epoll_is_the_default_backend_here() {
        let poller = Poller::new().unwrap();
        assert_eq!(poller.backend_name(), "epoll");
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn poll_fallback_reports_readiness_transitions() {
        let poller = Poller::new_poll_fallback();
        assert_eq!(poller.backend_name(), "poll");
        exercise(poller);
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn poll_fallback_rejects_double_registration_and_unknown_fds() {
        let mut poller = Poller::new_poll_fallback();
        let (_tx, rx) = socket_pair();
        poller.register(source(&rx), 1, Interest::READ).unwrap();
        assert!(poller.register(source(&rx), 2, Interest::READ).is_err());
        assert!(poller.reregister(12345, 3, Interest::READ).is_err());
        assert!(poller.deregister(12345).is_err());
    }

    #[test]
    fn hangup_is_reported_even_with_no_interest() {
        let mut poller = Poller::new().unwrap();
        let (tx, mut rx) = socket_pair();
        poller.register(source(&rx), 3, Interest::NONE).unwrap();
        // A plain FIN leaves the socket half-open (we could still write),
        // so provoke a full teardown: writing to a fully-closed peer makes
        // it answer RST, which marks our socket errored — and ERR/HUP are
        // reported even with an empty interest mask (they are unmaskable
        // in both epoll and poll), so the owner can reap the connection.
        // (The degraded sweep backend cannot detect this; skip there.)
        drop(tx);
        let _ = rx.write_all(&[1]);
        if matches!(poller.backend_name(), "epoll" | "poll") {
            let event = wait_for_token(&mut poller, 3);
            assert!(event.readable && event.writable);
        }
    }
}
