//! Cost-aware scenario scheduling.
//!
//! Queued submissions are ordered so that *cache-warming* runs execute
//! before their dependants: requests are grouped by cache namespace (runs
//! in one namespace feed each other's evaluations through the shared
//! cache), groups keep first-come-first-served fairness, and *within* a
//! group the run with the smallest estimated valuation cost goes first —
//! the cheapest run populates the namespace for the expensive ones, which
//! then answer most of their oracle valuations from the cache instead of
//! retraining.
//!
//! Cost estimates come from a per-scenario EWMA over the *paid* valuation
//! cost of past runs ([`modis_core::config::SkylineResult::valuation_cost`]);
//! a scenario that has never run falls back to its configured state budget.

use std::collections::HashMap;
use std::time::Instant;

use modis_core::telemetry::TraceContext;

/// Exponentially weighted per-scenario cost estimates.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Weight of the newest observation in `(0, 1]`.
    smoothing: f64,
    estimates: HashMap<String, f64>,
}

impl CostModel {
    /// Creates a model; `smoothing` is the weight of the newest observation
    /// (clamped into `(0, 1]`; 1.0 = keep only the last run).
    pub fn new(smoothing: f64) -> Self {
        CostModel {
            smoothing: smoothing.clamp(0.05, 1.0),
            estimates: HashMap::new(),
        }
    }

    /// Folds an observed run cost into the scenario's estimate.
    pub fn observe(&mut self, scenario: &str, cost: f64) {
        let cost = cost.max(0.0);
        match self.estimates.get_mut(scenario) {
            Some(est) => *est = (1.0 - self.smoothing) * *est + self.smoothing * cost,
            None => {
                self.estimates.insert(scenario.to_string(), cost);
            }
        }
    }

    /// The scenario's estimated cost, or `prior` before any observation.
    pub fn estimate(&self, scenario: &str, prior: f64) -> f64 {
        self.estimates.get(scenario).copied().unwrap_or(prior)
    }
}

/// How many times a request may be passed over by cheaper group members
/// before it jumps to the front of its group — bounds in-group waiting
/// under a sustained stream of cheap arrivals.
pub const MAX_BYPASSES: u32 = 8;

/// One queued run request.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// Ticket identifying the submission.
    pub ticket: u64,
    /// Registered scenario name.
    pub scenario: String,
    /// The scenario's cache namespace (the scheduling group).
    pub namespace: String,
    /// Arrival sequence number (monotonic per service).
    pub seq: u64,
    /// Estimated paid valuation cost at submission time.
    pub estimated_cost: f64,
    /// Times a later-arriving, cheaper request from the same group was
    /// popped ahead of this one (maintained by the scheduler; submit with
    /// 0). At [`MAX_BYPASSES`] the request stops being bypassable.
    pub bypassed: u32,
    /// When the request was enqueued (feeds the queue-wait histogram).
    pub submitted_at: Instant,
    /// The trace context the request arrived under: carried through the
    /// queue onto the executor thread so the job's spans (queue wait,
    /// run, scenario, waves) stitch into the submitter's trace.
    pub trace: TraceContext,
}

/// The namespace-aware cost priority queue.
///
/// `pop` selects by `(group arrival, overdue, estimated cost, arrival)`:
/// groups are served in arrival order, and inside a group the cheapest —
/// i.e. most cache-warming per unit of work — request runs first.
/// Starvation is bounded on both axes: across groups by the arrival-order
/// group priority, and *within* a group by aging — a request passed over
/// [`MAX_BYPASSES`] times becomes "overdue" and wins over any cheaper
/// later arrival. Selection is O(n) per pop, which is perfectly fine for
/// a queue of scenario-sized work items.
#[derive(Debug, Default)]
pub struct CostScheduler {
    pending: Vec<QueuedRequest>,
}

impl CostScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        CostScheduler::default()
    }

    /// Enqueues a request.
    pub fn push(&mut self, request: QueuedRequest) {
        self.pending.push(request);
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The queued requests, in arrival order (telemetry / batch prewarm).
    pub fn queued(&self) -> &[QueuedRequest] {
        &self.pending
    }

    /// Removes and returns the next request to run.
    pub fn pop(&mut self) -> Option<QueuedRequest> {
        if self.pending.is_empty() {
            return None;
        }
        // Earliest arrival per namespace group.
        let mut group_arrival: HashMap<&str, u64> = HashMap::new();
        for req in &self.pending {
            let entry = group_arrival
                .entry(req.namespace.as_str())
                .or_insert(req.seq);
            *entry = (*entry).min(req.seq);
        }
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let ga = group_arrival[a.namespace.as_str()];
                let gb = group_arrival[b.namespace.as_str()];
                // Overdue (fully aged) requests outrank cost within a group.
                let oa = a.bypassed < MAX_BYPASSES;
                let ob = b.bypassed < MAX_BYPASSES;
                ga.cmp(&gb)
                    .then(oa.cmp(&ob))
                    .then(
                        a.estimated_cost
                            .partial_cmp(&b.estimated_cost)
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
                    .then(a.seq.cmp(&b.seq))
            })
            .map(|(i, _)| i)?;
        let popped = self.pending.remove(best);
        // Age every earlier arrival of the same group that was passed over.
        for req in &mut self.pending {
            if req.namespace == popped.namespace && req.seq < popped.seq {
                req.bypassed = req.bypassed.saturating_add(1);
            }
        }
        Some(popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(ticket: u64, scenario: &str, namespace: &str, seq: u64, cost: f64) -> QueuedRequest {
        QueuedRequest {
            ticket,
            scenario: scenario.to_string(),
            namespace: namespace.to_string(),
            seq,
            estimated_cost: cost,
            bypassed: 0,
            submitted_at: Instant::now(),
            trace: TraceContext::NONE,
        }
    }

    #[test]
    fn cheapest_run_in_a_namespace_goes_first() {
        let mut s = CostScheduler::new();
        s.push(req(1, "expensive", "pool", 0, 200.0));
        s.push(req(2, "cheap", "pool", 1, 20.0));
        s.push(req(3, "middle", "pool", 2, 80.0));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|r| r.ticket).collect();
        assert_eq!(order, vec![2, 3, 1], "cheap warms the cache first");
    }

    #[test]
    fn namespace_groups_keep_arrival_fairness() {
        let mut s = CostScheduler::new();
        s.push(req(1, "a-big", "first", 0, 500.0));
        s.push(req(2, "b-tiny", "second", 1, 1.0));
        s.push(req(3, "a-small", "first", 2, 5.0));
        // Group "first" arrived first: its requests run (cheapest first)
        // before group "second", even though b-tiny is globally cheapest.
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|r| r.ticket).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn ties_break_by_arrival() {
        let mut s = CostScheduler::new();
        s.push(req(1, "x", "p", 0, 10.0));
        s.push(req(2, "y", "p", 1, 10.0));
        assert_eq!(s.pop().unwrap().ticket, 1);
        assert_eq!(s.pop().unwrap().ticket, 2);
        assert!(s.pop().is_none());
    }

    #[test]
    fn aging_bounds_in_group_starvation() {
        // An expensive request with a sustained stream of cheaper arrivals
        // in the same namespace: without aging it would wait forever.
        let mut s = CostScheduler::new();
        s.push(req(0, "expensive", "pool", 0, 500.0));
        let mut popped_at = None;
        for i in 1..=2 * MAX_BYPASSES as u64 + 4 {
            s.push(req(i, "cheap", "pool", i, 1.0));
            if s.pop().unwrap().ticket == 0 {
                popped_at = Some(i);
                break;
            }
        }
        let at = popped_at.expect("expensive request must eventually run");
        assert!(
            at <= MAX_BYPASSES as u64 + 1,
            "expensive ran after {at} pops (bound is {})",
            MAX_BYPASSES + 1
        );
    }

    #[test]
    fn cost_model_converges_towards_observations() {
        let mut m = CostModel::new(0.5);
        assert_eq!(m.estimate("s", 100.0), 100.0, "prior before observation");
        m.observe("s", 40.0);
        assert_eq!(
            m.estimate("s", 100.0),
            40.0,
            "first observation replaces prior"
        );
        m.observe("s", 20.0);
        assert!((m.estimate("s", 100.0) - 30.0).abs() < 1e-9);
        assert_eq!(m.estimate("t", 100.0), 100.0, "unobserved keeps prior");
    }

    #[test]
    fn smoothing_is_clamped() {
        let mut m = CostModel::new(42.0);
        m.observe("s", 10.0);
        m.observe("s", 0.0);
        // smoothing clamps to 1.0 ⇒ keep only the last run.
        assert_eq!(m.estimate("s", 5.0), 0.0);
    }
}
