//! # modis-service
//!
//! A persistent skyline-serving subsystem over the `modis-engine`
//! execution engine: where the engine runs one suite fast, the service
//! keeps that machinery warm *across* requests and *across* processes.
//!
//! ```text
//!   clients (in-process API, TCP line protocol)
//!        │ register(name, scenario)     │ submit(name) → Ticket
//!        ▼                              ▼
//!   ┌────────────┐   enqueue   ┌──────────────────┐
//!   │  scenario  │────────────▶│  cost-aware      │  namespace-grouped,
//!   │  registry  │             │  scheduler       │  cheapest-first order
//!   └────────────┘             └────────┬─────────┘
//!     fingerprint-guarded               │ drain (worker thread / RUN)
//!     namespaces                        ▼
//!                              ┌──────────────────┐
//!                              │ batched oracle   │  one thread-pool pass
//!                              │ valuation        │  per namespace
//!                              └────────┬─────────┘
//!                                       ▼
//!                              ┌──────────────────┐     ┌──────────────┐
//!                              │ Engine + shared  │◀───▶│  snapshot    │
//!                              │ evaluation cache │     │  file (disk) │
//!                              └──────────────────┘     └──────────────┘
//! ```
//!
//! * [`registry`] — scenarios are registered once by name; cache
//!   namespaces are keyed by substrate/task fingerprint, so incompatible
//!   spaces can never share (and poison) evaluations.
//! * [`scheduler`] — queued runs are ordered so cache-warming runs execute
//!   before their dependants: namespace groups keep arrival fairness, and
//!   within a group the cheapest run (by an EWMA over observed paid
//!   valuation cost) goes first.
//! * [`batch`] — pending state valuations from concurrent requests are
//!   grouped into one thread-pool pass per namespace (start-state prewarm
//!   plus the explicit [`ValuationRequest`] API).
//! * [`snapshot`] — the shared evaluation cache persists to disk in a
//!   hand-rolled, versioned, checksummed binary format and warm-starts a
//!   fresh process: a restarted service answers repeated suites with
//!   cache hits from its very first run.
//! * [`net`] — the TCP line protocol (`SUBMIT` / `POLL` / `WAIT` / `RUN`
//!   / `STATS` / `SNAPSHOT`) so the service runs as a daemon in tests and
//!   examples; the formal spec lives in `docs/PROTOCOL.md`.
//! * [`poller`] — readiness discovery with zero dependencies: a thin safe
//!   wrapper over `epoll(7)` via direct syscalls (with a `poll(2)`
//!   fallback), so a sweep touches only *ready* connections instead of
//!   attempting a syscall on every open one.
//! * [`reactor`] — the non-blocking front-end behind [`Daemon`]: N
//!   reactor threads (default `min(4, cores)`) share one accept socket,
//!   each driving its pinned connections through a [`poller::Poller`]
//!   (`std::net` sockets in non-blocking mode, O(ready) sweeps), requests
//!   pipeline freely with strictly ordered responses, `RUN` drains and
//!   `SNAPSHOT` writes execute on a companion executor thread, and
//!   per-reactor wakeup socket pairs connect job completions and shutdown
//!   to reactors parked in `epoll_wait`.
//! * [`cluster`] + [`router`] — the horizontal scaling layer: cache
//!   namespaces are partitioned across shard daemons by rendezvous
//!   hashing ([`cluster::ShardMap`]), and a [`Router`] fronts the shard
//!   set behind the same wire protocol (pipelining preserved end-to-end,
//!   cluster-wide tickets, aggregated `STATS`). Topology changes ship
//!   exactly the namespaces that move as wire shipments (`EXPORT` /
//!   `SHIP`), so a grown cluster answers its first run from the shipped
//!   warm cache. With K-way replication (`RouterConfig::replication` ≥ 2)
//!   the router heartbeats every shard, pushes namespace deltas to the
//!   K−1 replica owners after each completed `RUN`, and — when a primary
//!   dies — fails over to the freshest warm replica with zero operator
//!   action: tickets are re-homed, responses flagged `degraded=`, and
//!   per-shard circuit breakers keep dead shards from stalling traffic.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use modis_core::prelude::*;
//! use modis_core::substrate::mock::MockSubstrate;
//! use modis_engine::{Algorithm, Scenario};
//! use modis_service::{JobState, Service, ServiceConfig};
//!
//! let service = Service::new(ServiceConfig::default());
//! let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(8));
//! let config = ModisConfig::default().with_estimator(EstimatorMode::Oracle);
//! service
//!     .register(
//!         Scenario::new("apx", substrate, Algorithm::Apx, config)
//!             .with_cache_namespace("pool"),
//!     )
//!     .unwrap();
//! let ticket = service.submit("apx").unwrap();
//! service.run_pending();
//! let outcome = match service.poll(ticket).unwrap() {
//!     JobState::Done(outcome) => outcome,
//!     other => panic!("expected done, got {other:?}"),
//! };
//! assert!(!outcome.result.is_empty());
//! ```

#![deny(missing_docs)]

pub mod batch;
pub mod cluster;
pub mod error;
pub mod net;
pub mod poller;
pub mod reactor;
pub mod registry;
pub mod router;
pub mod scheduler;
pub mod service;
pub mod snapshot;

pub use batch::ValuationRequest;
pub use cluster::{ClusterScenario, ClusterSpec, ReplicaMove, ShardMap};
pub use error::ServiceError;
pub use net::{
    dispatch, done_line, handle_command, parse_ship_header, result_line, ship_request, Daemon,
    Reply, Request,
};
pub use reactor::{ReactorConfig, Wakeup};
pub use registry::{RegisteredScenario, ScenarioRegistry};
pub use router::{CircuitState, Router, RouterConfig, ShippedNamespace};
pub use scheduler::{CostModel, CostScheduler, QueuedRequest};
pub use service::{CompletionNotifier, JobState, Service, ServiceConfig, Ticket};
pub use snapshot::{
    SnapshotError, SHIPMENT_MAGIC, SHIPMENT_VERSION, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
