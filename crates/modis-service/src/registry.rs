//! The named scenario registry: substrates and task configurations are
//! registered once, and runs are submitted by name.
//!
//! Registration is where namespace safety is enforced: every scenario
//! carries a substrate/task fingerprint (`Substrate::fingerprint`), and two
//! scenarios may share a
//! cache namespace only when their fingerprints agree. The engine re-checks
//! the same invariant at run time (defence in depth); the registry rejects
//! the conflict *early*, with a recoverable error instead of a panic.

use std::collections::HashMap;

use modis_engine::Scenario;

use crate::error::ServiceError;

/// A registered scenario plus the identity facts the service needs without
/// touching the substrate again.
#[derive(Clone)]
pub struct RegisteredScenario {
    /// The runnable scenario (substrate × algorithm × config).
    pub scenario: Scenario,
    /// The substrate/task fingerprint recorded at registration.
    pub fingerprint: u64,
}

/// Name → scenario map with namespace-fingerprint guarding.
#[derive(Default)]
pub struct ScenarioRegistry {
    scenarios: HashMap<String, RegisteredScenario>,
    /// namespace → (fingerprint, first registrant) for conflict reporting.
    namespaces: HashMap<String, (u64, String)>,
}

impl ScenarioRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// Registers a scenario under its name. Rejects duplicate names and
    /// namespace re-use across incompatible substrates/tasks.
    pub fn register(&mut self, scenario: Scenario) -> Result<(), ServiceError> {
        if self.scenarios.contains_key(&scenario.name) {
            return Err(ServiceError::DuplicateScenario(scenario.name.clone()));
        }
        let fingerprint = scenario.substrate.fingerprint();
        let namespace = scenario.namespace().to_string();
        match self.namespaces.get(&namespace) {
            Some((seen, registered_by)) if *seen != fingerprint => {
                return Err(ServiceError::NamespaceConflict {
                    namespace,
                    registered_by: registered_by.clone(),
                });
            }
            Some(_) => {}
            None => {
                self.namespaces
                    .insert(namespace, (fingerprint, scenario.name.clone()));
            }
        }
        self.scenarios.insert(
            scenario.name.clone(),
            RegisteredScenario {
                scenario,
                fingerprint,
            },
        );
        Ok(())
    }

    /// Looks up a registered scenario by name.
    pub fn get(&self, name: &str) -> Option<&RegisteredScenario> {
        self.scenarios.get(name)
    }

    /// Looks up a scenario or returns [`ServiceError::UnknownScenario`].
    pub fn require(&self, name: &str) -> Result<&RegisteredScenario, ServiceError> {
        self.get(name)
            .ok_or_else(|| ServiceError::UnknownScenario(name.to_string()))
    }

    /// Registered scenario names, sorted for stable listings.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.scenarios.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use modis_core::config::ModisConfig;
    use modis_core::substrate::mock::MockSubstrate;
    use modis_core::substrate::Substrate;
    use modis_engine::Algorithm;

    fn scenario(name: &str, units: usize, namespace: &str) -> Scenario {
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(units));
        Scenario::new(name, substrate, Algorithm::Apx, ModisConfig::default())
            .with_cache_namespace(namespace)
    }

    #[test]
    fn registers_and_lists_by_name() {
        let mut reg = ScenarioRegistry::new();
        reg.register(scenario("b", 6, "pool-b")).unwrap();
        reg.register(scenario("a", 6, "pool-a")).unwrap();
        assert_eq!(reg.names(), vec!["a", "b"]);
        assert_eq!(reg.len(), 2);
        assert!(reg.get("a").is_some());
        assert!(matches!(
            reg.require("missing"),
            Err(ServiceError::UnknownScenario(_))
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut reg = ScenarioRegistry::new();
        reg.register(scenario("same", 6, "x")).unwrap();
        assert!(matches!(
            reg.register(scenario("same", 6, "y")),
            Err(ServiceError::DuplicateScenario(_))
        ));
    }

    #[test]
    fn shared_namespace_requires_matching_fingerprint() {
        let mut reg = ScenarioRegistry::new();
        reg.register(scenario("first", 6, "pool")).unwrap();
        // Same structure: allowed.
        reg.register(scenario("second", 6, "pool")).unwrap();
        // Different unit universe under the same namespace: rejected.
        let err = reg.register(scenario("third", 8, "pool")).unwrap_err();
        match err {
            ServiceError::NamespaceConflict {
                namespace,
                registered_by,
            } => {
                assert_eq!(namespace, "pool");
                assert_eq!(registered_by, "first");
            }
            other => panic!("unexpected error: {other}"),
        }
    }
}
