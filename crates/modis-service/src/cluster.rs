//! Cluster topology: which shard owns which cache namespace.
//!
//! A MODis cluster partitions **cache namespaces** — not individual states
//! — across shard daemons: a namespace's evaluations are only useful
//! together (a search over substrate *S* revisits *S*'s states), so the
//! namespace is the unit of placement, shipping and rebalancing.
//!
//! Placement is **rendezvous (highest-random-weight) hashing** over the
//! stable FNV primitives in [`modis_core::codec`]: every `(shard name,
//! namespace key)` pair gets a score, the highest score owns the
//! namespace. Under K-way replication the K highest scores own it — the
//! first is the **primary**, the rest are **replicas**, and the same
//! ranking doubles as the failover order. Rendezvous hashing gives the
//! property the rebalancing machinery leans on: when a shard joins, the
//! only namespaces that move are those the *new* shard now owns (at any
//! rank); when a shard leaves, the only ones that move are those the
//! *leaving* shard owned. No unrelated namespace ever changes hands, so a
//! topology change ships exactly the affected namespaces' snapshots and
//! nothing else (asserted by a property test in
//! `tests/integration_cluster.rs`).
//!
//! The hash is FNV-1a — deliberately not std's `DefaultHasher` — for the
//! same reason the snapshot codec pins it: ownership decisions recorded in
//! shipped files and made independently by routers on different machines
//! must agree across processes and toolchains.

use std::collections::BTreeMap;

use modis_core::codec::{fnv1a, FNV_OFFSET_BASIS};
use modis_engine::SharedEvalCache;

use crate::error::ServiceError;

/// Validates a token that will travel on the whitespace-delimited wire
/// protocol (shard name, scenario name, namespace, staged shipment path):
/// non-empty, no whitespace, no control characters. The single source of
/// truth for every entry point that admits names into a topology.
pub(crate) fn validate_token(token: &str, what: &str) -> Result<(), String> {
    if token.is_empty() || token.chars().any(|c| c.is_whitespace() || c.is_control()) {
        Err(format!("{what} {token:?} is not a single printable token"))
    } else {
        Ok(())
    }
}

/// The rendezvous score of `(shard, namespace key)`: FNV-1a over the shard
/// name, a separator byte (so `("ab", …)` and `("a", "b…")` cannot
/// collide), then the key's little-endian bytes.
fn rendezvous_score(shard: &str, key: u64) -> u64 {
    let h = fnv1a(FNV_OFFSET_BASIS, shard.as_bytes());
    let h = fnv1a(h, &[0xfe]);
    fnv1a(h, &key.to_le_bytes())
}

/// The cluster's shard set and the namespace → shard ownership function.
///
/// Cheap to clone and compare; the router keeps the live copy and derives
/// candidate topologies (for join/leave planning) as modified clones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardMap {
    /// Shard names, sorted and unique (order does not affect ownership —
    /// rendezvous scores do — but a canonical order keeps listings and
    /// comparisons deterministic).
    shards: Vec<String>,
}

impl ShardMap {
    /// An empty topology.
    pub fn new() -> Self {
        ShardMap::default()
    }

    /// A topology over the given shard names (deduplicated).
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut map = ShardMap::new();
        for name in names {
            map.add(name.into());
        }
        map
    }

    /// Adds a shard; returns whether it was new.
    pub fn add(&mut self, name: String) -> bool {
        match self.shards.binary_search(&name) {
            Ok(_) => false,
            Err(pos) => {
                self.shards.insert(pos, name);
                true
            }
        }
    }

    /// Removes a shard; returns whether it was present.
    pub fn remove(&mut self, name: &str) -> bool {
        match self.shards.binary_search_by(|s| s.as_str().cmp(name)) {
            Ok(pos) => {
                self.shards.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The shard names, sorted.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owning the hashed namespace `key`
    /// ([`SharedEvalCache::namespace_key`]), or `None` on an empty
    /// topology. Ties on the score (vanishingly rare) break by name, so
    /// ownership is a pure function of the shard set.
    pub fn owner_of(&self, key: u64) -> Option<&str> {
        self.shards
            .iter()
            .max_by_key(|shard| (rendezvous_score(shard, key), *shard))
            .map(String::as_str)
    }

    /// Convenience: the owner of a namespace given by name.
    pub fn owner_of_namespace(&self, namespace: &str) -> Option<&str> {
        self.owner_of(SharedEvalCache::namespace_key(namespace))
    }

    /// The `min(k, len)` shards owning the hashed namespace `key` under
    /// K-way replication, ranked: index 0 is the primary (identical to
    /// [`ShardMap::owner_of`]), the rest are replicas in failover order.
    /// Because the ranking is per-shard scores sorted descending, the K
    /// owners are always `min(k, len)` *distinct* shards, and a topology
    /// change perturbs each rank minimally (the rendezvous property holds
    /// rank by rank).
    pub fn owners_of(&self, key: u64, k: usize) -> Vec<&str> {
        let mut ranked: Vec<&str> = self.shards.iter().map(String::as_str).collect();
        ranked.sort_unstable_by(|a, b| {
            (rendezvous_score(b, key), *b).cmp(&(rendezvous_score(a, key), *a))
        });
        ranked.truncate(k);
        ranked
    }

    /// Convenience: the ranked owners of a namespace given by name.
    pub fn owners_of_namespace(&self, namespace: &str, k: usize) -> Vec<&str> {
        self.owners_of(SharedEvalCache::namespace_key(namespace), k)
    }

    /// The namespace keys (from `keys`) whose owner differs between `self`
    /// and `other`, with both owners: `(key, owner in self, owner in
    /// other)`. This is the rebalancing plan for a topology change.
    pub fn reassigned<'a>(
        &'a self,
        other: &'a ShardMap,
        keys: impl IntoIterator<Item = u64>,
    ) -> Vec<(u64, &'a str, &'a str)> {
        keys.into_iter()
            .filter_map(|key| {
                let before = self.owner_of(key)?;
                let after = other.owner_of(key)?;
                (before != after).then_some((key, before, after))
            })
            .collect()
    }

    /// The replica-aware rebalancing plan for a topology change under
    /// K-way replication: for each key whose owner *set* changed, the
    /// shards that must newly receive the namespace (`gained`) and the
    /// shards that stop owning it (`lost`), plus a surviving source to
    /// ship from. Shards that own the key in both topologies never appear
    /// in either list — the plan is minimal by construction.
    pub fn reassigned_replicas(
        &self,
        other: &ShardMap,
        keys: impl IntoIterator<Item = u64>,
        k: usize,
    ) -> Vec<ReplicaMove> {
        keys.into_iter()
            .filter_map(|key| {
                let before = self.owners_of(key, k);
                let after = other.owners_of(key, k);
                let gained: Vec<String> = after
                    .iter()
                    .filter(|s| !before.contains(s))
                    .map(|s| s.to_string())
                    .collect();
                let lost: Vec<String> = before
                    .iter()
                    .filter(|s| !after.contains(s))
                    .map(|s| s.to_string())
                    .collect();
                if gained.is_empty() && lost.is_empty() {
                    return None;
                }
                // Ship from the highest-ranked owner that survives the
                // change (it is as warm as any), falling back to the old
                // primary when the whole owner set turns over.
                let source = before
                    .iter()
                    .find(|s| after.contains(s))
                    .or_else(|| before.first())
                    .map(|s| s.to_string());
                Some(ReplicaMove {
                    key,
                    source,
                    gained,
                    lost,
                })
            })
            .collect()
    }
}

/// One entry of a replica-aware rebalancing plan
/// ([`ShardMap::reassigned_replicas`]): which shards gain and lose a
/// namespace when the topology changes, and which surviving owner the
/// shipment should come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaMove {
    /// The hashed namespace key ([`SharedEvalCache::namespace_key`]).
    pub key: u64,
    /// A shard that owned the key before and (preferably) still does —
    /// the warm source to ship from. `None` only on an empty old topology.
    pub source: Option<String>,
    /// Shards that own the key after but not before: they need the
    /// namespace shipped in.
    pub gained: Vec<String>,
    /// Shards that owned the key before but no longer do.
    pub lost: Vec<String>,
}

/// One routable scenario: its registered name and the cache namespace that
/// decides which shard executes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterScenario {
    /// The scenario's registered name (`Scenario::name`).
    pub name: String,
    /// Its cache namespace (`Scenario::namespace()`).
    pub namespace: String,
}

/// The routing table a cluster router is built over: scenario name →
/// namespace. Substrates are live objects that never cross the wire, so
/// every shard registers the full scenario set in-process and the router
/// only needs this name mapping to place requests.
#[derive(Debug, Clone, Default)]
pub struct ClusterSpec {
    /// scenario name → namespace, sorted by name.
    scenarios: BTreeMap<String, String>,
}

impl ClusterSpec {
    /// Builds a spec from `(scenario name, namespace)` pairs. Names and
    /// namespaces must be non-empty single tokens (the wire protocol is
    /// whitespace-delimited), and a scenario name may appear only once.
    pub fn new<I, N, M>(pairs: I) -> Result<Self, ServiceError>
    where
        I: IntoIterator<Item = (N, M)>,
        N: Into<String>,
        M: Into<String>,
    {
        let mut scenarios = BTreeMap::new();
        for (name, namespace) in pairs {
            let (name, namespace) = (name.into(), namespace.into());
            for (token, what) in [(&name, "scenario"), (&namespace, "namespace")] {
                validate_token(token, what).map_err(ServiceError::InvalidClusterSpec)?;
            }
            if scenarios.insert(name.clone(), namespace).is_some() {
                return Err(ServiceError::InvalidClusterSpec(format!(
                    "scenario {name:?} listed twice"
                )));
            }
        }
        Ok(ClusterSpec { scenarios })
    }

    /// The namespace of a scenario, if the spec routes it.
    pub fn namespace_of(&self, scenario: &str) -> Option<&str> {
        self.scenarios.get(scenario).map(String::as_str)
    }

    /// All scenario names, sorted.
    pub fn scenario_names(&self) -> impl Iterator<Item = &str> {
        self.scenarios.keys().map(String::as_str)
    }

    /// All distinct namespaces, sorted.
    pub fn namespaces(&self) -> Vec<&str> {
        let mut namespaces: Vec<&str> = self.scenarios.values().map(String::as_str).collect();
        namespaces.sort_unstable();
        namespaces.dedup();
        namespaces
    }

    /// Number of routable scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the spec is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_stable_and_total() {
        let map = ShardMap::from_names(["alpha", "beta", "gamma"]);
        assert_eq!(map.len(), 3);
        for key in 0..200u64 {
            let owner = map.owner_of(key).unwrap();
            assert!(map.shards().iter().any(|s| s == owner));
            // Deterministic: same topology, same owner, every time.
            assert_eq!(map.owner_of(key), Some(owner));
        }
        assert!(ShardMap::new().owner_of(7).is_none());
    }

    #[test]
    fn join_moves_only_namespaces_the_new_shard_owns() {
        let before = ShardMap::from_names(["s1", "s2"]);
        let mut after = before.clone();
        assert!(after.add("s3".into()));
        assert!(!after.add("s3".into()), "duplicate add is a no-op");
        let keys: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let moved = before.reassigned(&after, keys.iter().copied());
        assert!(!moved.is_empty(), "some namespace lands on the new shard");
        for (key, _, to) in moved {
            assert_eq!(
                to, "s3",
                "key {key:#x} moved to a shard that did not change"
            );
        }
    }

    #[test]
    fn leave_moves_only_the_leaving_shards_namespaces() {
        let before = ShardMap::from_names(["s1", "s2", "s3"]);
        let mut after = before.clone();
        assert!(after.remove("s2"));
        assert!(!after.remove("s2"));
        let keys: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x517c_c1b7_2722_0a95))
            .collect();
        for (key, from, _) in before.reassigned(&after, keys.iter().copied()) {
            assert_eq!(from, "s2", "key {key:#x} moved off a surviving shard");
        }
    }

    #[test]
    fn ownership_spreads_across_shards() {
        let map = ShardMap::from_names(["a", "b", "c", "d"]);
        let mut counts = std::collections::HashMap::new();
        for i in 0..400u64 {
            let key = SharedEvalCache::namespace_key(&format!("pool-{i}"));
            *counts
                .entry(map.owner_of(key).unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4, "every shard owns something: {counts:?}");
        for (shard, count) in &counts {
            assert!(
                *count > 40,
                "shard {shard} owns a degenerate share: {counts:?}"
            );
        }
    }

    #[test]
    fn top_k_owners_are_distinct_ranked_and_led_by_the_primary() {
        let map = ShardMap::from_names(["a", "b", "c", "d"]);
        for key in 0..300u64 {
            for k in 1..=6 {
                let owners = map.owners_of(key, k);
                assert_eq!(owners.len(), k.min(4), "min(k, shards) distinct owners");
                let mut dedup = owners.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(dedup.len(), owners.len(), "owners are distinct");
                assert_eq!(owners.first().copied(), map.owner_of(key));
                // Prefixes agree: rank r is a pure function of the shard
                // set, independent of how many ranks were asked for.
                if k > 1 {
                    let prefix = (k - 1).min(owners.len());
                    assert_eq!(map.owners_of(key, k - 1), owners[..prefix].to_vec());
                }
            }
        }
        assert!(ShardMap::new().owners_of(7, 2).is_empty());
    }

    #[test]
    fn replica_plan_is_minimal_on_join_and_leave() {
        let before = ShardMap::from_names(["s1", "s2", "s3"]);
        let mut joined = before.clone();
        joined.add("s4".into());
        let keys: Vec<u64> = (0..400u64)
            .map(|i| i.wrapping_mul(0x2545_f491_4f6c_dd1d))
            .collect();
        for mv in before.reassigned_replicas(&joined, keys.iter().copied(), 2) {
            assert_eq!(mv.gained, vec!["s4".to_string()], "only the joiner gains");
            assert!(mv.lost.len() <= 1, "at most the displaced rank leaves");
            let src = mv.source.expect("warm source");
            assert_ne!(src, "s4", "source survives from the old owner set");
        }
        let mut left = before.clone();
        left.remove("s2");
        for mv in before.reassigned_replicas(&left, keys.iter().copied(), 2) {
            assert_eq!(mv.lost, vec!["s2".to_string()], "only the leaver loses");
            assert!(mv.gained.len() <= 1);
            assert_ne!(mv.source.as_deref(), Some("s2"));
        }
    }

    #[test]
    fn spec_validates_tokens_and_uniqueness() {
        let spec = ClusterSpec::new([("t3/apx", "t3-pool"), ("t3/bi", "t3-pool"), ("m/apx", "m")])
            .unwrap();
        assert_eq!(spec.namespace_of("t3/apx"), Some("t3-pool"));
        assert_eq!(spec.namespace_of("ghost"), None);
        assert_eq!(spec.namespaces(), vec!["m", "t3-pool"]);
        assert_eq!(spec.scenario_names().count(), 3);
        assert!(ClusterSpec::new([("bad name", "ns")]).is_err());
        assert!(ClusterSpec::new([("name", "bad ns")]).is_err());
        assert!(ClusterSpec::new([("", "ns")]).is_err());
        assert!(ClusterSpec::new([("dup", "a"), ("dup", "b")]).is_err());
    }
}
