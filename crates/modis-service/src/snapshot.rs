//! Evaluation-cache snapshots: a hand-rolled, versioned binary codec that
//! persists the engine's shared [`SharedEvalCache`] to disk and warm-starts
//! a fresh process from it.
//!
//! The workspace vendors no serde, so the format is built from the
//! fixed-width primitives in [`modis_core::codec`]:
//!
//! ```text
//! magic    8 × u8   b"MODISNAP"
//! version  u32      2
//! shards   u32      shard count at export time
//! entries  u64      total evaluations
//! per shard:
//!   hand   u64      clock-hand position
//!   count  u64      slots in this shard
//!   per slot (clock order):
//!     namespace  u64        hashed cache namespace
//!     bits       u64        bitmap length
//!     words      n × u64    packed bitmap words
//!     referenced u8         second-chance bit
//!     raw        u64 + n × f64  raw metric vector
//!     perf       u64 + n × f64  normalised performance vector
//! guards   u64      namespace-guard pair count
//! per pair:
//!   key          u64   hashed cache namespace
//!   fingerprint  u64   substrate/task fingerprint recorded for it
//! checksum u64      FNV-1a over every preceding byte
//! ```
//!
//! Slots are written in clock order together with their referenced bits and
//! the hand position, so a restore into a cache of the same geometry
//! reproduces not just the values but the *eviction schedule*; a restore
//! into a different geometry rehashes the entries and keeps the values.
//! The guard section carries the engine's namespace → fingerprint map, so
//! the "no incompatible substrate may reuse a warm namespace" protection
//! survives the restart along with the evaluations it protects — without
//! it, a restarted service would accept refreshed data into a stale
//! namespace and serve the old evaluations. Every decode validates magic,
//! version and checksum before touching the payload, and every length
//! field is bounds-checked against the remaining input, so truncated or
//! corrupted snapshots are rejected cleanly instead of poisoning the
//! cache.

use std::fmt;
use std::path::Path;

use modis_core::codec::{checksum, ByteReader, ByteWriter, CodecError};
use modis_core::estimator::SharedEvaluation;
use modis_data::StateBitmap;
use modis_engine::{ExportedEvaluation, ShardExport, SharedEvalCache};

/// File magic every snapshot starts with.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"MODISNAP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 2;

/// File magic of a namespace *shipment* — the per-namespace snapshot slice
/// a cluster ships between shard processes when ownership rebalances. A
/// shipment wraps a standard snapshot (filtered to the shipped namespaces)
/// with a manifest of the namespace names it carries.
pub const SHIPMENT_MAGIC: &[u8; 8] = b"MODISHIP";

/// Current shipment format version.
pub const SHIPMENT_VERSION: u32 = 1;

/// Upper bound accepted for a shipped namespace name's byte length.
const MAX_NAMESPACE_NAME: usize = 1 << 12;

/// Upper bound accepted for the number of namespaces in one shipment.
const MAX_SHIPMENT_NAMESPACES: usize = 1 << 16;

/// Upper bound accepted for a single bitmap's bit length (a corrupted
/// length field must not drive a huge allocation).
const MAX_BITMAP_BITS: usize = 1 << 28;

/// Upper bound accepted for a metric vector's length.
const MAX_METRICS: usize = 1 << 16;

/// Why a snapshot could not be written or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The input declares an unsupported format version.
    UnsupportedVersion(u32),
    /// The checksum seal does not match the payload.
    ChecksumMismatch,
    /// The payload is structurally invalid (truncated, inconsistent
    /// lengths, malformed bitmap words, trailing bytes).
    Corrupt(CodecError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot I/O failed: {err}"),
            SnapshotError::BadMagic => write!(f, "not a MODis snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(err) => write!(f, "corrupt snapshot: {err}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            SnapshotError::Corrupt(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

impl From<CodecError> for SnapshotError {
    fn from(err: CodecError) -> Self {
        SnapshotError::Corrupt(err)
    }
}

/// A decoded snapshot: per-shard cache contents plus the persisted
/// namespace-guard pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedSnapshot {
    /// Cache contents in clock order, one entry per shard.
    pub shards: Vec<ShardExport>,
    /// `(namespace key, substrate fingerprint)` pairs recorded by the
    /// exporting engine's namespace guard.
    pub namespace_fingerprints: Vec<(u64, u64)>,
}

/// Serialises the cache's contents *without* guard state — shorthand for
/// [`encode_snapshot`] with an empty guard section (cache-only tooling and
/// tests).
pub fn encode_cache(cache: &SharedEvalCache) -> Vec<u8> {
    encode_snapshot(cache, &[])
}

/// Serialises the cache's current contents plus the engine's namespace
/// guard into the versioned snapshot format (including the trailing
/// checksum seal).
pub fn encode_snapshot(cache: &SharedEvalCache, namespace_fingerprints: &[(u64, u64)]) -> Vec<u8> {
    encode_shards(&cache.export_shards(), namespace_fingerprints)
}

/// Serialises pre-exported shard contents plus guard pairs into the
/// snapshot format — the writer shared by full snapshots
/// ([`encode_snapshot`]) and namespace shipments ([`encode_shipment`]).
fn encode_shards(shards: &[ShardExport], namespace_fingerprints: &[(u64, u64)]) -> Vec<u8> {
    let total: usize = shards.iter().map(|s| s.entries.len()).sum();
    let mut w = ByteWriter::with_capacity(64 + total * 96);
    w.put_bytes(SNAPSHOT_MAGIC);
    w.put_u32(SNAPSHOT_VERSION);
    w.put_u32(shards.len() as u32);
    w.put_u64(total as u64);
    for shard in shards {
        w.put_u64(shard.hand as u64);
        w.put_u64(shard.entries.len() as u64);
        for entry in &shard.entries {
            w.put_u64(entry.namespace);
            w.put_u64(entry.bitmap.len() as u64);
            for &word in entry.bitmap.words() {
                w.put_u64(word);
            }
            w.put_u8(entry.referenced as u8);
            w.put_u64(entry.evaluation.raw.len() as u64);
            for &v in &entry.evaluation.raw {
                w.put_f64(v);
            }
            w.put_u64(entry.evaluation.perf.len() as u64);
            for &v in &entry.evaluation.perf {
                w.put_f64(v);
            }
        }
    }
    w.put_u64(namespace_fingerprints.len() as u64);
    for &(key, fingerprint) in namespace_fingerprints {
        w.put_u64(key);
        w.put_u64(fingerprint);
    }
    let seal = checksum(w.bytes());
    w.put_u64(seal);
    w.into_bytes()
}

/// Decodes a snapshot produced by [`encode_snapshot`], validating magic,
/// version, checksum and every length field.
pub fn decode_snapshot(bytes: &[u8]) -> Result<DecodedSnapshot, SnapshotError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + 8 {
        return Err(SnapshotError::Corrupt(CodecError::Truncated {
            needed: SNAPSHOT_MAGIC.len() + 12,
            remaining: bytes.len(),
        }));
    }
    let (payload, seal) = bytes.split_at(bytes.len() - 8);
    let mut r = ByteReader::new(payload);
    if r.get_bytes(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let declared = u64::from_le_bytes(seal.try_into().unwrap());
    if checksum(payload) != declared {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let shard_count = r.get_u32()? as usize;
    if shard_count == 0 || shard_count > 1 << 16 {
        return Err(SnapshotError::Corrupt(CodecError::Invalid(
            "shard count out of range",
        )));
    }
    let total = r.get_len(usize::MAX >> 1)?;
    let mut shards = Vec::with_capacity(shard_count);
    let mut seen = 0usize;
    for _ in 0..shard_count {
        let hand = r.get_len(usize::MAX >> 1)?;
        let count = r.get_len(r.remaining() / 8)?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let namespace = r.get_u64()?;
            let bits = r.get_len(MAX_BITMAP_BITS)?;
            let nwords = bits.div_ceil(64);
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(r.get_u64()?);
            }
            let bitmap = StateBitmap::from_words(words, bits).ok_or(SnapshotError::Corrupt(
                CodecError::Invalid("bitmap padding bits set"),
            ))?;
            let referenced = match r.get_u8()? {
                0 => false,
                1 => true,
                _ => {
                    return Err(SnapshotError::Corrupt(CodecError::Invalid(
                        "referenced bit out of range",
                    )))
                }
            };
            let nraw = r.get_len(MAX_METRICS)?;
            let mut raw = Vec::with_capacity(nraw);
            for _ in 0..nraw {
                raw.push(r.get_f64()?);
            }
            let nperf = r.get_len(MAX_METRICS)?;
            let mut perf = Vec::with_capacity(nperf);
            for _ in 0..nperf {
                perf.push(r.get_f64()?);
            }
            entries.push(ExportedEvaluation {
                namespace,
                bitmap,
                referenced,
                evaluation: SharedEvaluation { raw, perf },
            });
            seen += 1;
        }
        shards.push(ShardExport { hand, entries });
    }
    if seen != total {
        return Err(SnapshotError::Corrupt(CodecError::Invalid(
            "entry count disagrees with header",
        )));
    }
    let guard_count = r.get_len(r.remaining() / 16)?;
    let mut namespace_fingerprints = Vec::with_capacity(guard_count);
    for _ in 0..guard_count {
        let key = r.get_u64()?;
        let fingerprint = r.get_u64()?;
        namespace_fingerprints.push((key, fingerprint));
    }
    if !r.is_exhausted() {
        return Err(SnapshotError::Corrupt(CodecError::Invalid(
            "trailing bytes after guard section",
        )));
    }
    Ok(DecodedSnapshot {
        shards,
        namespace_fingerprints,
    })
}

/// Restores a snapshot's evaluations into `cache` (ignoring the guard
/// section), returning how many were processed. Same shard geometry ⇒
/// exact restore (slot order, referenced bits, hand); otherwise entries
/// are rehashed.
pub fn restore_cache(cache: &SharedEvalCache, bytes: &[u8]) -> Result<usize, SnapshotError> {
    Ok(cache.import_shards(decode_snapshot(bytes)?.shards))
}

/// A decoded namespace shipment: the manifest of shipped namespace names
/// plus the wrapped (filtered) snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedShipment {
    /// Names of the namespaces this shipment carries, as the exporting
    /// shard knew them (observability: keys in the payload are hashed).
    pub namespaces: Vec<String>,
    /// The wrapped snapshot: entries of the shipped namespaces only, plus
    /// their guard pairs.
    pub snapshot: DecodedSnapshot,
}

/// Serialises a namespace shipment: the entries of the hashed `keys` (in
/// the order [`SharedEvalCache::export_namespaces`] yields them), the
/// matching guard pairs, and a manifest of the human-readable `names`.
pub fn encode_shipment(
    names: &[String],
    cache: &SharedEvalCache,
    keys: &[u64],
    namespace_fingerprints: &[(u64, u64)],
) -> Vec<u8> {
    let inner = encode_shards(&cache.export_namespaces(keys), namespace_fingerprints);
    let mut w = ByteWriter::with_capacity(64 + inner.len());
    w.put_bytes(SHIPMENT_MAGIC);
    w.put_u32(SHIPMENT_VERSION);
    w.put_u64(names.len() as u64);
    for name in names {
        w.put_str(name);
    }
    w.put_u64(inner.len() as u64);
    w.put_bytes(&inner);
    let seal = checksum(w.bytes());
    w.put_u64(seal);
    w.into_bytes()
}

/// Decodes a shipment produced by [`encode_shipment`], validating the
/// outer magic/version/checksum, the manifest, and the wrapped snapshot.
pub fn decode_shipment(bytes: &[u8]) -> Result<DecodedShipment, SnapshotError> {
    if bytes.len() < SHIPMENT_MAGIC.len() + 4 + 8 {
        return Err(SnapshotError::Corrupt(CodecError::Truncated {
            needed: SHIPMENT_MAGIC.len() + 12,
            remaining: bytes.len(),
        }));
    }
    let (payload, seal) = bytes.split_at(bytes.len() - 8);
    let mut r = ByteReader::new(payload);
    if r.get_bytes(SHIPMENT_MAGIC.len())? != SHIPMENT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != SHIPMENT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let declared = u64::from_le_bytes(seal.try_into().unwrap());
    if checksum(payload) != declared {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let count = r.get_len(MAX_SHIPMENT_NAMESPACES)?;
    let mut namespaces = Vec::with_capacity(count);
    for _ in 0..count {
        namespaces.push(r.get_str(MAX_NAMESPACE_NAME)?);
    }
    let inner_len = r.get_len(r.remaining())?;
    let inner = r.get_bytes(inner_len)?;
    if !r.is_exhausted() {
        return Err(SnapshotError::Corrupt(CodecError::Invalid(
            "trailing bytes after wrapped snapshot",
        )));
    }
    Ok(DecodedShipment {
        namespaces,
        snapshot: decode_snapshot(inner)?,
    })
}

/// Writes `bytes` to `path` atomically via a uniquely-named sibling
/// temporary file, so a concurrent reader never observes a half-written
/// snapshot and concurrent writers never clobber each other's temp file.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_file_name(format!(
        "{}.{}.{}.tmp",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("snapshot"),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    if let Err(err) = std::fs::write(&tmp, bytes) {
        // A failed write (disk full, permissions revoked mid-write) can
        // still have created a partial temp file — remove it so error
        // paths leave no litter next to the real snapshot.
        let _ = std::fs::remove_file(&tmp);
        return Err(err.into());
    }
    if let Err(err) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(err.into());
    }
    Ok(())
}

/// Writes a snapshot of `cache` plus the guard pairs to `path` (atomically
/// via a sibling temporary file), returning the snapshot size in bytes.
pub fn save_to_path(
    cache: &SharedEvalCache,
    namespace_fingerprints: &[(u64, u64)],
    path: &Path,
) -> Result<usize, SnapshotError> {
    let bytes = encode_snapshot(cache, namespace_fingerprints);
    write_atomic(path, &bytes)?;
    Ok(bytes.len())
}

/// Writes a namespace shipment to `path` (atomic like [`save_to_path`]),
/// returning its size in bytes.
pub fn save_shipment_to_path(
    names: &[String],
    cache: &SharedEvalCache,
    keys: &[u64],
    namespace_fingerprints: &[(u64, u64)],
    path: &Path,
) -> Result<usize, SnapshotError> {
    let bytes = encode_shipment(names, cache, keys, namespace_fingerprints);
    write_atomic(path, &bytes)?;
    Ok(bytes.len())
}

/// Reads either format from `path` — a full snapshot (`MODISNAP`) or a
/// namespace shipment (`MODISHIP`) — and **merges** its evaluations into
/// `cache` through the hashed insertion path (no slot-geometry replay, no
/// hand movement: safe on a cache already serving traffic). Returns the
/// merged entry count plus the guard pairs for the caller to seed.
pub fn merge_from_path(
    cache: &SharedEvalCache,
    path: &Path,
) -> Result<(usize, Vec<(u64, u64)>), SnapshotError> {
    let bytes = std::fs::read(path)?;
    let decoded = decode_any(&bytes)?;
    let merged = cache.merge_exports(decoded.shards);
    Ok((merged, decoded.namespace_fingerprints))
}

/// Decodes either format — a full snapshot (`MODISNAP`) or a namespace
/// shipment (`MODISHIP`) — to the wrapped snapshot contents.
pub fn decode_any(bytes: &[u8]) -> Result<DecodedSnapshot, SnapshotError> {
    if bytes.starts_with(SHIPMENT_MAGIC) {
        Ok(decode_shipment(bytes)?.snapshot)
    } else {
        decode_snapshot(bytes)
    }
}

/// Reads a snapshot file, restores its evaluations into `cache` and
/// returns `(entries processed, guard pairs)` — callers seed the guard
/// pairs into their engine so the namespace protection survives the
/// restart.
pub fn load_from_path(
    cache: &SharedEvalCache,
    path: &Path,
) -> Result<(usize, Vec<(u64, u64)>), SnapshotError> {
    let bytes = std::fs::read(path)?;
    let decoded = decode_snapshot(&bytes)?;
    let imported = cache.import_shards(decoded.shards);
    Ok((imported, decoded.namespace_fingerprints))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use modis_core::estimator::EvaluationHook;

    fn populated_cache() -> Arc<SharedEvalCache> {
        let cache = Arc::new(SharedEvalCache::with_capacity(4, 256));
        for (n, namespace) in ["alpha", "beta"].iter().enumerate() {
            let handle = cache.handle(namespace);
            for i in 0..20 {
                let mut b = StateBitmap::empty(70);
                b.set(i, true);
                b.set(69, n == 1);
                handle.record(
                    &b,
                    &SharedEvaluation {
                        raw: vec![i as f64, 0.5],
                        perf: vec![1.0 - i as f64 / 20.0, 0.5],
                    },
                );
            }
        }
        cache
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let cache = populated_cache();
        let guards = vec![(7u64, 0xdead_beefu64), (9, 42)];
        let bytes = encode_snapshot(&cache, &guards);
        let decoded = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded.shards, cache.export_shards());
        assert_eq!(decoded.namespace_fingerprints, guards);
        // The cache-only shorthand carries an empty guard section.
        let plain = decode_snapshot(&encode_cache(&cache)).unwrap();
        assert!(plain.namespace_fingerprints.is_empty());
    }

    #[test]
    fn restore_into_same_geometry_is_identical() {
        let cache = populated_cache();
        let bytes = encode_cache(&cache);
        let fresh = Arc::new(SharedEvalCache::with_capacity(4, 256));
        assert_eq!(restore_cache(&fresh, &bytes).unwrap(), 40);
        assert_eq!(fresh.export_shards(), cache.export_shards());
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let bytes = encode_cache(&populated_cache());
        for cut in [0, 7, 11, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn corruption_anywhere_is_rejected() {
        let bytes = encode_cache(&populated_cache());
        // Flip one bit at a spread of positions: either the checksum seal
        // catches it, or (when the flip lands in the seal itself) the seal
        // no longer matches the payload.
        for pos in (0..bytes.len()).step_by(97) {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x40;
            assert!(
                decode_snapshot(&corrupted).is_err(),
                "bit flip at {pos} must fail"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_distinct_errors() {
        let bytes = encode_cache(&populated_cache());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode_snapshot(&wrong_magic),
            Err(SnapshotError::BadMagic)
        ));

        // Re-seal a version bump so only the version check can fire.
        let mut wrong_version = bytes.clone();
        wrong_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        let len = wrong_version.len();
        let seal = checksum(&wrong_version[..len - 8]);
        wrong_version[len - 8..].copy_from_slice(&seal.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&wrong_version),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn shipment_round_trips_and_rejects_damage() {
        let cache = populated_cache();
        let keys = [modis_engine::SharedEvalCache::namespace_key("alpha")];
        let names = vec!["alpha".to_string()];
        let guards = vec![(keys[0], 0xfeedu64)];
        let bytes = encode_shipment(&names, &cache, &keys, &guards);
        let decoded = decode_shipment(&bytes).unwrap();
        assert_eq!(decoded.namespaces, names);
        assert_eq!(decoded.snapshot.namespace_fingerprints, guards);
        let shipped: usize = decoded
            .snapshot
            .shards
            .iter()
            .map(|s| s.entries.len())
            .sum();
        assert_eq!(shipped, 20, "only alpha's 20 entries travel");
        assert!(decoded
            .snapshot
            .shards
            .iter()
            .flat_map(|s| &s.entries)
            .all(|e| e.namespace == keys[0]));

        // A shipment is not a snapshot and vice versa.
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            decode_shipment(&encode_cache(&cache)),
            Err(SnapshotError::BadMagic)
        ));
        // Bit flips anywhere are rejected (outer seal, or inner seal when
        // the flip lands inside the outer seal bytes).
        for pos in (0..bytes.len()).step_by(89) {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x20;
            assert!(decode_shipment(&corrupted).is_err(), "flip at {pos}");
        }
        for cut in [0, 9, 30, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_shipment(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn merge_from_path_accepts_both_formats() {
        let cache = populated_cache();
        let dir = std::env::temp_dir();
        let snap = dir.join(format!("modis_merge_snap_{}.bin", std::process::id()));
        let ship = dir.join(format!("modis_merge_ship_{}.bin", std::process::id()));
        let alpha = modis_engine::SharedEvalCache::namespace_key("alpha");
        save_to_path(&cache, &[(alpha, 1)], &snap).unwrap();
        save_shipment_to_path(
            &["alpha".to_string()],
            &cache,
            &[alpha],
            &[(alpha, 1)],
            &ship,
        )
        .unwrap();

        let full = Arc::new(SharedEvalCache::with_capacity(2, 0));
        let (merged, guards) = merge_from_path(&full, &snap).unwrap();
        assert_eq!((merged, guards), (40, vec![(alpha, 1)]));

        let partial = Arc::new(SharedEvalCache::with_capacity(2, 0));
        let (merged, guards) = merge_from_path(&partial, &ship).unwrap();
        assert_eq!((merged, guards), (20, vec![(alpha, 1)]));
        assert_eq!(partial.stats().entries, 20);
        std::fs::remove_file(&snap).unwrap();
        std::fs::remove_file(&ship).unwrap();
    }

    #[test]
    fn failed_saves_leave_no_temp_files_behind() {
        let cache = populated_cache();
        let dir = std::env::temp_dir().join(format!("modis_atomic_fail_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("occupied").join("inner")).unwrap();
        // The target is a non-empty directory, so the final rename must
        // fail — and the uniquely-named temp sibling must be cleaned up.
        assert!(save_to_path(&cache, &[], &dir.join("occupied")).is_err());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp litter: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let cache = populated_cache();
        let path =
            std::env::temp_dir().join(format!("modis_snapshot_test_{}.bin", std::process::id()));
        let guards = vec![(1u64, 2u64)];
        let bytes = save_to_path(&cache, &guards, &path).unwrap();
        assert!(bytes > 0);
        let fresh = Arc::new(SharedEvalCache::with_capacity(4, 256));
        let (imported, restored_guards) = load_from_path(&fresh, &path).unwrap();
        assert_eq!(imported, 40);
        assert_eq!(restored_guards, guards);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            load_from_path(&fresh, &path),
            Err(SnapshotError::Io(_))
        ));
    }
}
