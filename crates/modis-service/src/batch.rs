//! Batched oracle evaluation: valuation requests from concurrent clients
//! are grouped per cache namespace and resolved in one thread-pool pass
//! each, instead of training one state at a time per request.
//!
//! The heavy lifting (dedup, cache consult, parallel training, publish
//! back) lives in `Engine::valuate_states`; this module owns the *grouping*
//! — mapping many named requests onto the fewest engine passes and
//! scattering the results back per request — plus the start-state helper
//! the service uses to prewarm queued scenarios as one batch.

use std::sync::Arc;

use modis_core::substrate::Substrate;
use modis_data::StateBitmap;
use modis_engine::{Algorithm, Scenario};

use crate::error::ServiceError;
use crate::registry::ScenarioRegistry;

/// A client's request to valuate a set of states under a registered
/// scenario's namespace (e.g. "score these candidate datasets").
#[derive(Debug, Clone)]
pub struct ValuationRequest {
    /// Registered scenario whose substrate/namespace valuates the states.
    pub scenario: String,
    /// The states to valuate.
    pub states: Vec<StateBitmap>,
}

/// One per-namespace engine pass assembled from many requests.
pub(crate) struct NamespaceBatch {
    /// The shared cache namespace.
    pub namespace: String,
    /// The substrate every state in the batch belongs to.
    pub substrate: Arc<dyn Substrate>,
    /// Concatenated states of every participating request.
    pub states: Vec<StateBitmap>,
    /// Scatter map: `(request index, offset into states, length)`.
    pub spans: Vec<(usize, usize, usize)>,
}

/// Groups requests into per-namespace batches (sorted by namespace for a
/// deterministic pass order). Requests naming unknown scenarios fail the
/// whole call — partial batches would hide the error.
pub(crate) fn group_requests(
    registry: &ScenarioRegistry,
    requests: &[ValuationRequest],
) -> Result<Vec<NamespaceBatch>, ServiceError> {
    let mut batches: Vec<NamespaceBatch> = Vec::new();
    for (index, request) in requests.iter().enumerate() {
        let registered = registry.require(&request.scenario)?;
        let namespace = registered.scenario.namespace();
        let batch = match batches.iter_mut().find(|b| b.namespace == namespace) {
            Some(batch) => batch,
            None => {
                batches.push(NamespaceBatch {
                    namespace: namespace.to_string(),
                    substrate: registered.scenario.substrate.clone(),
                    states: Vec::new(),
                    spans: Vec::new(),
                });
                batches.last_mut().unwrap()
            }
        };
        batch
            .spans
            .push((index, batch.states.len(), request.states.len()));
        batch.states.extend(request.states.iter().cloned());
    }
    batches.sort_by(|a, b| a.namespace.cmp(&b.namespace));
    Ok(batches)
}

/// The states a scenario's search valuates first: the forward start for
/// every algorithm, plus the backward start for the bi-directional and
/// diversified searches. Prewarming these as one batch means the searches
/// themselves open on cache hits.
pub fn start_states(scenario: &Scenario) -> Vec<StateBitmap> {
    let substrate = scenario.substrate.as_ref();
    match scenario.algorithm {
        Algorithm::Apx | Algorithm::Exact => vec![substrate.forward_start()],
        Algorithm::Bi | Algorithm::NoBi | Algorithm::Div => {
            vec![substrate.forward_start(), substrate.backward_start()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use modis_core::config::ModisConfig;
    use modis_core::substrate::mock::MockSubstrate;

    fn registry() -> ScenarioRegistry {
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(6));
        let other: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(4));
        let mut reg = ScenarioRegistry::new();
        for (name, alg) in [("apx", Algorithm::Apx), ("bi", Algorithm::Bi)] {
            reg.register(
                Scenario::new(name, substrate.clone(), alg, ModisConfig::default())
                    .with_cache_namespace("pool"),
            )
            .unwrap();
        }
        reg.register(
            Scenario::new("solo", other, Algorithm::Apx, ModisConfig::default())
                .with_cache_namespace("alone"),
        )
        .unwrap();
        reg
    }

    #[test]
    fn requests_sharing_a_namespace_merge_into_one_pass() {
        let reg = registry();
        let requests = vec![
            ValuationRequest {
                scenario: "apx".into(),
                states: vec![StateBitmap::full(6), StateBitmap::full(6).flipped(0)],
            },
            ValuationRequest {
                scenario: "solo".into(),
                states: vec![StateBitmap::full(4)],
            },
            ValuationRequest {
                scenario: "bi".into(),
                states: vec![StateBitmap::empty(6)],
            },
        ];
        let batches = group_requests(&reg, &requests).unwrap();
        assert_eq!(batches.len(), 2, "two namespaces, two passes");
        assert_eq!(batches[0].namespace, "alone");
        assert_eq!(batches[1].namespace, "pool");
        assert_eq!(batches[1].states.len(), 3);
        assert_eq!(batches[1].spans, vec![(0, 0, 2), (2, 2, 1)]);
    }

    #[test]
    fn unknown_scenario_fails_the_whole_group() {
        let reg = registry();
        let requests = vec![ValuationRequest {
            scenario: "ghost".into(),
            states: vec![],
        }];
        assert!(matches!(
            group_requests(&reg, &requests),
            Err(ServiceError::UnknownScenario(_))
        ));
    }

    #[test]
    fn start_states_follow_the_algorithm() {
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(5));
        let forward_only = Scenario::new(
            "a",
            substrate.clone(),
            Algorithm::Apx,
            ModisConfig::default(),
        );
        assert_eq!(start_states(&forward_only), vec![StateBitmap::full(5)]);
        let bidirectional = Scenario::new("b", substrate, Algorithm::Div, ModisConfig::default());
        assert_eq!(
            start_states(&bidirectional),
            vec![StateBitmap::full(5), StateBitmap::empty(5)]
        );
    }
}
