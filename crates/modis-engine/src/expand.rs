//! Work-pool frontier expansion.
//!
//! ApxMODis (and the exact enumerator) share a property the engine
//! exploits: their traversal order is a pure function of the search-space
//! structure — `op_gen` children are spawned, deduplicated and queued
//! regardless of how the spawned states *score*. The engine therefore
//! splits each search into
//!
//! 1. a cheap sequential **schedule enumeration** that replays the exact
//!    BFS traversal (visited-set, level cap, valuation budget) without
//!    valuating anything, and
//! 2. a **wave-parallel evaluation** of the schedule: worker threads score
//!    `op_gen` children concurrently (probing the shared cache first),
//!    while results are *committed* — recorded in the valuation context and
//!    offered to the [`EpsilonSkyline`] — strictly in schedule order.
//!
//! Because commits happen in the sequential algorithm's order, a parallel
//! run produces byte-identical skylines to the sequential one, for any
//! thread count. Under [`EstimatorMode::Surrogate`], waves are additionally
//! capped so they never straddle the oracle→surrogate switch-over, and the
//! cheap surrogate phase runs sequentially; determinism is preserved there
//! too. BiMODis is *not* wave-parallelisable: its correlation pruning makes
//! the traversal depend on every earlier valuation, so the engine runs it
//! sequentially (still benefiting from the shared cache).

use std::time::Instant;

use modis_core::config::{ModisConfig, SkylineEntry, SkylineResult};
use modis_core::estimator::{EstimatorMode, ValuationContext};
use modis_core::pareto::EpsilonSkyline;
use modis_core::search_common::{finalize_result, op_gen, Direction, ProtectedSet, VisitedSet};
use modis_core::substrate::Substrate;
use modis_data::StateBitmap;

use crate::pool::parallel_map;

/// How many schedule entries each worker thread gets per wave, on average.
const WAVE_FACTOR: usize = 4;

/// A worker's evaluation of one state: the raw metrics plus a flag marking
/// results loaded from the shared cache rather than trained.
type WaveResult = (Vec<f64>, bool);

/// Replays the ApxMODis BFS traversal without valuating: returns the ordered
/// list of `(child, level)` the sequential search would visit after the
/// start state, honouring the visited-set, `max_level` and the `max_states`
/// budget. Budget accounting mirrors `ctx.num_valuated()` exactly — states
/// already recorded in the (possibly pre-warmed) context are scheduled but
/// consume none, just as a sequential `valuate` memo hit would not. Call
/// *after* the start state has been valuated.
fn enumerate_forward_schedule<S: Substrate + ?Sized>(
    ctx: &ValuationContext<'_, S>,
    config: &ModisConfig,
) -> Vec<(StateBitmap, usize)> {
    let substrate = ctx.substrate();
    let protected = ProtectedSet::of(substrate);
    let mut visited = VisitedSet::new();
    let mut schedule: Vec<(StateBitmap, usize)> = Vec::new();
    let mut queue: std::collections::VecDeque<(StateBitmap, usize)> = Default::default();
    let mut budget_used = ctx.num_valuated();

    let s_u = substrate.forward_start();
    visited.insert(&s_u);
    queue.push_back((s_u, 0));

    while let Some((state, level)) = queue.pop_front() {
        if budget_used >= config.max_states {
            break;
        }
        if level >= config.max_level {
            continue;
        }
        for child in op_gen(&state, Direction::Forward, &protected) {
            if budget_used >= config.max_states {
                break;
            }
            if !visited.insert(&child) {
                continue;
            }
            if !ctx.contains(&child) {
                budget_used += 1;
            }
            schedule.push((child.clone(), level + 1));
            queue.push_back((child, level + 1));
        }
    }
    schedule
}

/// Evaluates one wave of states in parallel. Each worker probes the shared
/// cache (when installed) and falls back to the substrate's oracle; results
/// come back in wave order as `(raw, from_shared)`.
fn evaluate_wave<S: Substrate + ?Sized>(
    ctx: &ValuationContext<'_, S>,
    wave: &[(StateBitmap, usize)],
    threads: usize,
) -> Vec<WaveResult> {
    let substrate = ctx.substrate();
    let hook = ctx.hook();
    let evaluate_one = |bitmap: &StateBitmap| -> WaveResult {
        if let Some(hit) = hook.and_then(|h| h.lookup(bitmap)) {
            (hit.raw, true)
        } else {
            (substrate.evaluate_raw(bitmap), false)
        }
    };

    parallel_map(wave.len(), threads, |i| evaluate_one(&wave[i].0))
}

/// Runs a valuation schedule: oracle phases are evaluated wave-parallel and
/// committed in order; once the surrogate takes over, the (cheap) remainder
/// is valuated sequentially. `commit` sees every state in schedule order
/// with its normalised performance vector.
fn process_schedule<S, F>(
    ctx: &ValuationContext<'_, S>,
    schedule: &[(StateBitmap, usize)],
    threads: usize,
    mut commit: F,
) where
    S: Substrate + ?Sized,
    F: FnMut(&StateBitmap, usize, Vec<f64>),
{
    let mut i = 0;
    while i < schedule.len() {
        if ctx.surrogate_active() {
            for (state, level) in &schedule[i..] {
                let perf = ctx.valuate(state);
                commit(state, *level, perf);
            }
            return;
        }
        // States already recorded in a (pre-warmed) context are memo hits in
        // the sequential run — replay them through `valuate` so counters and
        // budget behave identically, and never hand them to a wave.
        let (state, level) = &schedule[i];
        if ctx.contains(state) {
            let perf = ctx.valuate(state);
            commit(state, *level, perf);
            i += 1;
            continue;
        }
        let mut take = (threads.max(1) * WAVE_FACTOR).min(schedule.len() - i);
        if let EstimatorMode::Surrogate { warmup, .. } = ctx.mode() {
            // Never straddle the oracle→surrogate switch-over: the states a
            // sequential run would score with the surrogate must not be
            // trained by an over-eager wave.
            let remaining_warmup = warmup.saturating_sub(ctx.oracle_record_count());
            take = take.min(remaining_warmup.max(1));
        }
        // A wave holds only fresh states; it ends at the next memoised one.
        let mut end = i + 1;
        while end < i + take && !ctx.contains(&schedule[end].0) {
            end += 1;
        }
        let wave = &schedule[i..end];
        let wave_start = Instant::now();
        // Spans open on the coordinator thread, so they inherit the
        // enclosing scenario span's trace through the thread-local stack;
        // "valuation" times the thread-pool pass itself, "wave" adds the
        // scatter/commit bookkeeping around it.
        let ambient = modis_core::telemetry::ambient();
        let _wave_span = ambient.as_ref().map(|t| t.tracer.span("wave"));
        let valuation_span = ambient.as_ref().map(|t| t.tracer.span("valuation"));
        let results = evaluate_wave(ctx, wave, threads);
        drop(valuation_span);
        if let Some(telemetry) = ambient {
            telemetry
                .metrics
                .histogram(
                    "engine_wave_us",
                    "Wall time of one parallel wave expansion, microseconds.",
                )
                .record_duration(wave_start.elapsed());
            telemetry
                .metrics
                .histogram(
                    "engine_wave_states",
                    "States valuated per parallel wave expansion.",
                )
                .record(wave.len() as u64);
        }
        for ((state, level), (raw, from_shared)) in wave.iter().zip(results) {
            let perf = ctx.record_oracle(state, raw, from_shared);
            commit(state, *level, perf);
        }
        i = end;
    }
}

/// Wave-parallel ApxMODis over an externally managed valuation context.
///
/// Produces byte-identical results to
/// [`modis_core::apx::apx_modis_with_context`] for every `threads` value
/// (including 1) — also on re-used, pre-warmed contexts, whose memoised
/// states are replayed as budget-free memo hits exactly like the sequential
/// search; wall-clock scales with the oracle phase's parallelism.
pub fn parallel_apx_modis_with_context<S: Substrate + ?Sized>(
    ctx: &ValuationContext<'_, S>,
    config: &ModisConfig,
    threads: usize,
) -> SkylineResult {
    let start = Instant::now();
    let substrate = ctx.substrate();
    let mut sky = EpsilonSkyline::new(
        substrate.measures().clone(),
        config.epsilon,
        config.decisive,
    );

    let s_u = substrate.forward_start();
    let perf_u = ctx.valuate(&s_u);
    sky.offer(&s_u, &perf_u, 0);

    let schedule = enumerate_forward_schedule(ctx, config);
    process_schedule(ctx, &schedule, threads, |state, level, perf| {
        sky.offer(state, &perf, level);
    });

    finalize_result(&sky, ctx, config, start.elapsed().as_secs_f64())
}

/// Wave-parallel ApxMODis with a fresh oracle/surrogate context per
/// [`ModisConfig`] (the parallel counterpart of `modis_core::apx::apx_modis`).
pub fn parallel_apx_modis<S: Substrate + ?Sized>(
    substrate: &S,
    config: &ModisConfig,
    threads: usize,
) -> SkylineResult {
    let ctx = ValuationContext::new(substrate, config.estimator);
    parallel_apx_modis_with_context(&ctx, config, threads)
}

/// Wave-parallel exact algorithm: enumerates every state reachable within
/// `max_level` reductions (up to `max_states`), valuates them across the
/// worker pool and returns the exact Pareto front. Byte-identical to
/// [`modis_core::exact::exact_modis_with_context`] on the same context.
pub fn parallel_exact_modis_with_context<S: Substrate + ?Sized>(
    ctx: &ValuationContext<'_, S>,
    config: &ModisConfig,
    threads: usize,
) -> SkylineResult {
    let start = Instant::now();
    let substrate = ctx.substrate();
    let protected = ProtectedSet::of(substrate);

    // Enumeration identical to `exact_modis`: `states` holds the start state
    // plus every reachable child, in BFS order, capped at `max_states`.
    let mut visited = VisitedSet::new();
    let mut states: Vec<(StateBitmap, usize)> = Vec::new();
    let mut queue: std::collections::VecDeque<(StateBitmap, usize)> = Default::default();
    let s_u = substrate.forward_start();
    visited.insert(&s_u);
    queue.push_back((s_u.clone(), 0));
    states.push((s_u, 0));
    while let Some((state, level)) = queue.pop_front() {
        if states.len() >= config.max_states {
            break;
        }
        if level >= config.max_level {
            continue;
        }
        for child in op_gen(&state, Direction::Forward, &protected) {
            if states.len() >= config.max_states {
                break;
            }
            if visited.insert(&child) {
                states.push((child.clone(), level + 1));
                queue.push_back((child, level + 1));
            }
        }
    }

    let mut perfs: Vec<Vec<f64>> = Vec::with_capacity(states.len());
    process_schedule(ctx, &states, threads, |_, _, perf| perfs.push(perf));

    let measures = substrate.measures().clone();
    let candidate_idx: Vec<usize> = (0..states.len())
        .filter(|&i| !measures.violates_upper(&perfs[i]))
        .collect();
    let candidate_perfs: Vec<Vec<f64>> = candidate_idx.iter().map(|&i| perfs[i].clone()).collect();
    let front_local = crate::skyline::parallel_skyline(&candidate_perfs, threads);

    let entries: Vec<SkylineEntry> = front_local
        .into_iter()
        .map(|li| {
            let i = candidate_idx[li];
            let (bitmap, level) = &states[i];
            SkylineEntry {
                bitmap: bitmap.clone(),
                perf: perfs[i].clone(),
                raw: ctx.raw_for(bitmap),
                size: substrate.artifact_size(bitmap),
                level: *level,
            }
        })
        .collect();

    SkylineResult {
        entries,
        states_valuated: ctx.num_valuated(),
        elapsed_seconds: start.elapsed().as_secs_f64(),
        stats: ctx.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modis_core::apx::apx_modis_with_context;
    use modis_core::exact::exact_modis_with_context;
    use modis_core::substrate::mock::MockSubstrate;

    fn oracle_config() -> ModisConfig {
        ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_epsilon(0.1)
            .with_max_states(200)
            .with_max_level(6)
    }

    fn assert_same_result(a: &SkylineResult, b: &SkylineResult) {
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.bitmap, y.bitmap);
            assert_eq!(x.perf, y.perf);
            assert_eq!(x.raw, y.raw);
            assert_eq!(x.size, y.size);
            assert_eq!(x.level, y.level);
        }
        assert_eq!(a.states_valuated, b.states_valuated);
    }

    #[test]
    fn schedule_matches_sequential_valuation_count() {
        let sub = MockSubstrate::new(6);
        let cfg = oracle_config();
        let schedule_ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        schedule_ctx.valuate(&sub.forward_start());
        let schedule = enumerate_forward_schedule(&schedule_ctx, &cfg);
        let ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        let seq = apx_modis_with_context(&ctx, &cfg);
        assert_eq!(1 + schedule.len(), seq.states_valuated);
    }

    #[test]
    fn parallel_apx_matches_sequential_across_thread_counts() {
        let sub = MockSubstrate::new(8);
        let cfg = oracle_config();
        let ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        let seq = apx_modis_with_context(&ctx, &cfg);
        for threads in [1, 2, 4, 8] {
            let par = parallel_apx_modis(&sub, &cfg, threads);
            assert_same_result(&par, &seq);
        }
    }

    #[test]
    fn parallel_apx_matches_sequential_under_tight_budget() {
        let sub = MockSubstrate::new(10);
        let cfg = oracle_config().with_max_states(17);
        let ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        let seq = apx_modis_with_context(&ctx, &cfg);
        let par = parallel_apx_modis(&sub, &cfg, 4);
        assert_same_result(&par, &seq);
    }

    #[test]
    fn parallel_apx_is_deterministic_in_surrogate_mode() {
        let sub = MockSubstrate::new(8);
        let cfg = ModisConfig::default()
            .with_estimator(EstimatorMode::Surrogate {
                warmup: 7,
                refresh: 5,
            })
            .with_max_states(80);
        let a = parallel_apx_modis(&sub, &cfg, 4);
        let b = parallel_apx_modis(&sub, &cfg, 2);
        let c = parallel_apx_modis(&sub, &cfg, 1);
        assert_same_result(&a, &b);
        assert_same_result(&a, &c);
        assert!(a.stats.surrogate_calls > 0, "surrogate should have engaged");
    }

    #[test]
    fn surrogate_waves_match_fully_sequential_run() {
        let sub = MockSubstrate::new(8);
        let cfg = ModisConfig::default()
            .with_estimator(EstimatorMode::Surrogate {
                warmup: 9,
                refresh: 6,
            })
            .with_max_states(60);
        let ctx = ValuationContext::new(&sub, cfg.estimator);
        let seq = apx_modis_with_context(&ctx, &cfg);
        let par = parallel_apx_modis(&sub, &cfg, 4);
        assert_same_result(&par, &seq);
        assert_eq!(par.stats.oracle_calls, seq.stats.oracle_calls);
    }

    #[test]
    fn parallel_apx_matches_sequential_on_prewarmed_context() {
        // The `_with_context` APIs exist to share test records across runs;
        // a re-used context's memoised states must replay as budget-free
        // memo hits, exactly like the sequential search.
        let sub = MockSubstrate::new(8);
        let warm_cfg = oracle_config().with_max_states(15);
        let cfg = oracle_config().with_max_states(40);

        let seq_ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        let _ = apx_modis_with_context(&seq_ctx, &warm_cfg);
        let seq = apx_modis_with_context(&seq_ctx, &cfg);

        let par_ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        let _ = apx_modis_with_context(&par_ctx, &warm_cfg);
        let par = parallel_apx_modis_with_context(&par_ctx, &cfg, 4);

        assert_same_result(&par, &seq);
        assert_eq!(par.stats.oracle_calls, seq.stats.oracle_calls);
        assert_eq!(par.stats.cache_hits, seq.stats.cache_hits);
    }

    #[test]
    fn parallel_exact_matches_sequential() {
        let sub = MockSubstrate::new(6);
        let cfg = ModisConfig::default()
            .with_max_states(10_000)
            .with_max_level(6);
        let ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        let seq = exact_modis_with_context(&ctx, &cfg);
        let par_ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        let par = parallel_exact_modis_with_context(&par_ctx, &cfg, 4);
        assert_same_result(&par, &seq);
    }
}
