//! # modis-engine
//!
//! A parallel, cache-aware execution engine for multi-scenario MODis
//! skyline generation.
//!
//! The core crate's algorithms (`apx_modis`, `bi_modis`, `div_modis`,
//! `exact_modis`) are single-threaded and score every state from scratch.
//! This crate wraps them in a reusable engine with three pieces:
//!
//! * **Wave-parallel frontier expansion** ([`expand`]) — `op_gen` children
//!   are evaluated across a worker pool and committed to the ε-skyline in
//!   the sequential algorithm's order, so a parallel run produces
//!   *byte-identical* skylines to a sequential one for any thread count.
//! * **A shared evaluation cache** ([`cache`]) — a sharded
//!   `(namespace, state) → evaluation` store installed behind the
//!   [`modis_core::estimator::EvaluationHook`] seam, so states revisited
//!   across passes and across scenarios sharing a pool are trained once.
//!   Hit/miss counters are surfaced in every result.
//! * **A scenario runner** ([`engine`]) — [`Engine::run_suite`] executes a
//!   registry of named scenarios (substrate × algorithm × config)
//!   concurrently under a configurable parallelism budget and returns
//!   per-scenario [`ScenarioOutcome`]s plus cache statistics.
//!
//! ```
//! use std::sync::Arc;
//! use modis_core::prelude::*;
//! use modis_core::substrate::Substrate;
//! use modis_engine::{parallel_apx_modis, Engine};
//!
//! // Parallel drop-in for `apx_modis`, identical output:
//! # struct Demo;
//! # impl Substrate for Demo {
//! #     fn num_units(&self) -> usize { 4 }
//! #     fn unit_label(&self, u: usize) -> String { format!("u{u}") }
//! #     fn backward_start(&self) -> modis_data::StateBitmap { modis_data::StateBitmap::empty(4) }
//! #     fn measures(&self) -> &MeasureSet { static M: std::sync::OnceLock<MeasureSet> = std::sync::OnceLock::new(); M.get_or_init(|| MeasureSet::new(vec![MeasureSpec::maximise("q"), MeasureSpec::minimise("c", 1.0)])) }
//! #     fn evaluate_raw(&self, b: &modis_data::StateBitmap) -> Vec<f64> { vec![0.5, 0.1 + 0.2 * b.count_ones() as f64] }
//! #     fn state_features(&self, b: &modis_data::StateBitmap) -> Vec<f64> { vec![b.count_ones() as f64] }
//! #     fn artifact_size(&self, b: &modis_data::StateBitmap) -> (usize, usize) { (b.count_ones(), 1) }
//! # }
//! # let substrate = Demo;
//! let config = ModisConfig::default().with_estimator(EstimatorMode::Oracle);
//! let skyline = parallel_apx_modis(&substrate, &config, 4);
//! assert!(!skyline.is_empty());
//! ```
//!
//! See [`Engine`] for the multi-scenario entry point.

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod expand;
mod pool;
pub mod scenario;
pub mod skyline;

pub use cache::{CacheHandle, CacheStats, ExportedEvaluation, ShardExport, SharedEvalCache};
pub use engine::{BatchValuation, Engine, EngineConfig, SuiteResult};
pub use expand::{
    parallel_apx_modis, parallel_apx_modis_with_context, parallel_exact_modis_with_context,
};
pub use scenario::{Algorithm, Scenario, ScenarioOutcome};
pub use skyline::{parallel_skyline, parallel_skyline_with_stats};
