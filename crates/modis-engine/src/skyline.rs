//! Wave-parallel skyline computation over the engine thread pool.
//!
//! [`parallel_skyline`] runs the two phases of the block-partitioned kernel
//! of [`modis_core::dominance_index`] across the engine's scoped thread
//! pool:
//!
//! 1. **local pass** — each contiguous block of the sum-sorted candidate
//!    order rejects points dominated *within the block's own candidate
//!    window*. A same-block dominator is a global dominator and duplicate
//!    flags are precomputed globally, so every local rejection is final;
//! 2. **verify pass** — the few survivors (≈ the skyline itself) are
//!    checked against the full index, in parallel chunks.
//!
//! Because phase 1 only ever narrows the candidate set with sound
//! rejections and phase 2 evaluates the exact per-point predicate, the
//! result is byte-identical to
//! [`modis_core::dominance::skyline_pairwise_baseline`] for **any** thread
//! count and any block partitioning — the engine's standing determinism
//! contract.

use modis_core::dominance::skyline_with_stats;
use modis_core::dominance_index::{record_stats, DominanceIndex, DominanceStats, MASK_MIN_POINTS};

use crate::pool::parallel_map;

/// Points below which forking the pool costs more than the scan itself.
const PARALLEL_MIN_POINTS: usize = 512;

/// Blocks per worker in the local pass (smaller blocks reject more cheaply,
/// more blocks amortise worse).
const BLOCKS_PER_WORKER: usize = 4;

/// Exact skyline of `points` computed across up to `threads` pool workers;
/// byte-identical to [`modis_core::dominance::skyline`] (and therefore to
/// the pairwise baseline) at every thread count. Flushes kernel statistics
/// into the ambient telemetry like the core dispatcher does.
pub fn parallel_skyline(points: &[Vec<f64>], threads: usize) -> Vec<usize> {
    let (keep, stats) = parallel_skyline_with_stats(points, threads);
    record_stats(&stats);
    keep
}

/// [`parallel_skyline`] returning the kernel's work statistics without
/// flushing them.
pub fn parallel_skyline_with_stats(
    points: &[Vec<f64>],
    threads: usize,
) -> (Vec<usize>, DominanceStats) {
    let n = points.len();
    let workers = threads.max(1);
    if workers == 1 || n < PARALLEL_MIN_POINTS {
        return skyline_with_stats(points);
    }
    let Some(index) = DominanceIndex::build(points) else {
        // Degenerate shapes (ragged/zero-measure) go to the core dispatcher,
        // which routes them to the pairwise baseline.
        return skyline_with_stats(points);
    };
    let use_masks = n >= MASK_MIN_POINTS;
    let blocks = (workers * BLOCKS_PER_WORKER).min(n);
    let per = n.div_ceil(blocks);
    let ranges: Vec<(usize, usize)> = (0..blocks)
        .map(|b| (b * per, ((b + 1) * per).min(n)))
        .filter(|(s, e)| s < e)
        .collect();

    let local: Vec<(Vec<u32>, u64)> = parallel_map(ranges.len(), workers, |b| {
        let (start, end) = ranges[b];
        let mut stats = DominanceStats::new("parallel");
        let survivors = index.local_pass(start, end, use_masks, &mut stats);
        (survivors, stats.comparisons)
    });
    let mut stats = DominanceStats::new("parallel");
    let mut survivors: Vec<u32> = Vec::new();
    for (block_survivors, comparisons) in local {
        survivors.extend(block_survivors);
        stats.comparisons += comparisons;
    }

    let chunk = survivors.len().div_ceil(workers).max(1);
    let chunks: Vec<&[u32]> = survivors.chunks(chunk).collect();
    let verified: Vec<(Vec<u32>, u64)> = parallel_map(chunks.len(), workers, |c| {
        let mut stats = DominanceStats::new("parallel");
        let kept = chunks[c]
            .iter()
            .copied()
            .filter(|&orig| !index.dominated(orig as usize, use_masks, &mut stats))
            .collect();
        (kept, stats.comparisons)
    });
    let mut keep: Vec<usize> = Vec::new();
    for (kept, comparisons) in verified {
        keep.extend(kept.into_iter().map(|orig| orig as usize));
        stats.comparisons += comparisons;
    }
    keep.sort_unstable();
    stats.finish(n);
    (keep, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modis_core::dominance::skyline_pairwise_baseline;

    fn lcg_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..dims).map(|_| next()).collect())
            .collect()
    }

    #[test]
    fn identical_at_every_thread_count() {
        for &(n, dims) in &[(0usize, 3usize), (1, 2), (40, 4), (700, 4), (1200, 3)] {
            let pts = lcg_points(n, dims, n as u64 + 17);
            let base = skyline_pairwise_baseline(&pts);
            for threads in [1, 2, 3, 4, 8] {
                assert_eq!(
                    parallel_skyline(&pts, threads),
                    base,
                    "n={n} dims={dims} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn nan_and_duplicate_inputs_stay_identical() {
        let mut pts = lcg_points(900, 4, 99);
        for i in (0..900).step_by(7) {
            pts[i][i % 4] = f64::NAN;
        }
        for i in (1..900).step_by(13) {
            pts[i] = pts[i - 1].clone();
        }
        let base = skyline_pairwise_baseline(&pts);
        for threads in [1, 2, 4] {
            assert_eq!(parallel_skyline(&pts, threads), base);
        }
    }
}
