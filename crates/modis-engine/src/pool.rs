//! A minimal work pool shared by the wave expander and the suite runner.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every index in `0..n` across up to `workers` scoped
/// threads and returns the results in index order. Serial when `workers`
/// or `n` is 1. A panicking worker propagates its panic to the caller.
pub(crate) fn parallel_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8, 64] {
            let out = parallel_map(17, workers, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_input() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn worker_panic_propagates() {
        parallel_map(8, 4, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
