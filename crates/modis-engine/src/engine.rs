//! The execution engine: runs suites of scenarios concurrently over one
//! shared evaluation cache.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::time::Instant;

use modis_core::bimodis::bi_modis_with_context;
use modis_core::divmodis::div_modis_with_context;
use modis_core::estimator::{EstimatorMode, EvaluationHook, SharedEvaluation, ValuationContext};
use modis_core::substrate::Substrate;
use modis_core::telemetry::{self, MetricsRegistry, Telemetry, TraceContext, Tracer};
use modis_data::StateBitmap;

use crate::cache::{CacheStats, SharedEvalCache};
use crate::expand::{parallel_apx_modis_with_context, parallel_exact_modis_with_context};
use crate::pool::parallel_map;
use crate::scenario::{Algorithm, Scenario, ScenarioOutcome};

/// Engine parallelism and cache configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Threads used by the wave-parallel frontier expander *within* one
    /// scenario (Apx / Exact). 1 disables intra-scenario parallelism.
    pub worker_threads: usize,
    /// How many scenarios of a suite run concurrently.
    pub scenario_parallelism: usize,
    /// Shard count of the shared evaluation cache.
    pub cache_shards: usize,
    /// Total capacity of the shared evaluation cache (entries across all
    /// shards; 0 = unbounded). Cold entries beyond it are reclaimed by
    /// second-chance eviction and re-trained on their next visit. For tasks
    /// whose measures include wall-clock training time, a re-trained state
    /// re-measures the clock, so cross-scenario byte-stability of raw
    /// metrics holds only while the suite's distinct-state count stays
    /// within capacity (per-scenario determinism is unaffected — each
    /// scenario's `ValuationContext` record store never evicts).
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        EngineConfig {
            worker_threads: cpus,
            scenario_parallelism: cpus.clamp(1, 4),
            cache_shards: 16,
            cache_capacity: 1 << 20,
        }
    }
}

impl EngineConfig {
    /// Builder-style worker-thread setter.
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads.max(1);
        self
    }

    /// Builder-style scenario-parallelism setter.
    pub fn with_scenario_parallelism(mut self, budget: usize) -> Self {
        self.scenario_parallelism = budget.max(1);
        self
    }

    /// Builder-style cache-shard setter.
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Builder-style cache-capacity setter (0 = unbounded).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }
}

/// Result of one [`Engine::valuate_states`] batch: evaluations aligned with
/// the input states plus batch-level counters.
#[derive(Debug, Clone)]
pub struct BatchValuation {
    /// One evaluation per input state, in input order.
    pub evaluations: Vec<SharedEvaluation>,
    /// Distinct states the batch resolved (duplicates collapse).
    pub unique_states: usize,
    /// Distinct states answered from the shared cache.
    pub shared_hits: usize,
    /// Distinct states trained fresh in this pass.
    pub trained: usize,
}

/// Result of [`Engine::run_suite`]: per-scenario outcomes (input order) plus
/// engine-level statistics.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// One outcome per scenario, in registration order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Shared evaluation-cache counters after the suite.
    pub cache: CacheStats,
    /// Wall-clock seconds for the whole suite.
    pub wall_seconds: f64,
}

impl SuiteResult {
    /// The outcome registered under `name`, if any.
    pub fn outcome(&self, name: &str) -> Option<&ScenarioOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }

    /// Total oracle valuations answered by the shared cache across the
    /// suite's scenarios.
    pub fn total_shared_hits(&self) -> usize {
        self.outcomes.iter().map(|o| o.shared_hits()).sum()
    }

    /// Total states valuated across the suite's scenarios.
    pub fn total_states_valuated(&self) -> usize {
        self.outcomes.iter().map(|o| o.result.states_valuated).sum()
    }
}

/// A reusable execution engine: one shared evaluation cache plus a
/// parallelism budget for running scenario suites.
///
/// ```
/// use std::sync::Arc;
/// use modis_core::prelude::*;
/// use modis_engine::{Algorithm, Engine, EngineConfig, Scenario};
///
/// // Tiny demo substrate (the engine works with any `Substrate`).
/// use modis_data::{Attribute, Dataset, Schema, Value};
/// let base = Dataset::from_rows(
///     "base",
///     Schema::from_attributes(vec![
///         Attribute::key("id"),
///         Attribute::feature("x"),
///         Attribute::target("y"),
///     ]),
///     (0..30)
///         .map(|i| vec![Value::Int(i), Value::Float((i % 5) as f64), Value::Float((2 * (i % 5)) as f64)])
///         .collect(),
/// )
/// .unwrap();
/// let task = TaskSpec {
///     name: "demo".into(),
///     model: ModelKind::LinearRegressor,
///     target: "y".into(),
///     key: Some("id".into()),
///     measures: MeasureSet::new(vec![
///         MeasureSpec::maximise("p_R2"),
///         MeasureSpec::minimise("p_Train", 2.0),
///     ]),
///     metric_kinds: vec![MetricKind::R2, MetricKind::TrainTime],
///     train_ratio: 0.7,
///     seed: 7,
/// };
/// let substrate: Arc<dyn Substrate> =
///     Arc::new(TableSubstrate::from_pool(&[base], task, &TableSpaceConfig::default()));
///
/// let config = ModisConfig::default().with_max_states(20).with_estimator(EstimatorMode::Oracle);
/// let engine = Engine::new(EngineConfig::default());
/// let suite = engine.run_suite(&[
///     Scenario::new("apx", substrate.clone(), Algorithm::Apx, config.clone())
///         .with_cache_namespace("demo-pool"),
///     Scenario::new("bi", substrate, Algorithm::Bi, config)
///         .with_cache_namespace("demo-pool"),
/// ]);
/// assert_eq!(suite.outcomes.len(), 2);
/// ```
pub struct Engine {
    config: EngineConfig,
    cache: Arc<SharedEvalCache>,
    /// Substrates the engine has executed, kept weakly so telemetry can
    /// aggregate their memo counters without pinning dead search spaces.
    memo_sources: Mutex<Vec<Weak<dyn Substrate>>>,
    /// First-seen substrate fingerprint per namespace key
    /// ([`SharedEvalCache::namespace_key`]). A `StateBitmap` only means
    /// something relative to the substrate that produced it, so a namespace
    /// re-used over a structurally different substrate/task (or over
    /// refreshed data) would silently poison valuations — the engine
    /// rejects it instead. Keyed by the stable hashed key so the map can be
    /// persisted with cache snapshots and seeded after a restart.
    namespace_guard: Mutex<HashMap<u64, u64>>,
    /// The engine's metrics registry + span tracer. The service layer and
    /// reactor register their instruments here too, so one `METRICS`
    /// scrape sees the whole daemon.
    telemetry: Telemetry,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// Creates an engine with its own shared evaluation cache, bounded at
    /// [`EngineConfig::cache_capacity`] evaluations.
    pub fn new(config: EngineConfig) -> Self {
        let cache = Arc::new(SharedEvalCache::with_capacity(
            config.cache_shards,
            config.cache_capacity,
        ));
        Engine::with_cache(config, cache)
    }

    /// Creates an engine over an existing cache (lets several engines — or
    /// several suites over time — share evaluations).
    pub fn with_cache(config: EngineConfig, cache: Arc<SharedEvalCache>) -> Self {
        Engine {
            config,
            cache,
            memo_sources: Mutex::new(Vec::new()),
            namespace_guard: Mutex::new(HashMap::new()),
            telemetry: Telemetry {
                metrics: Arc::new(MetricsRegistry::new()),
                tracer: Arc::new(Tracer::with_capacity(4096)),
            },
        }
    }

    /// The engine's metrics registry — the single registry a daemon's
    /// `METRICS` verb renders. Layers above the engine (service, reactor)
    /// register their instruments into this registry rather than keeping
    /// their own, so one scrape covers the whole process.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.telemetry.metrics
    }

    /// The engine's span tracer (dumped by the `TRACE DUMP` verb).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.telemetry.tracer
    }

    /// The registry + tracer pair, cloneable into ambient scopes.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shared evaluation cache.
    pub fn cache(&self) -> &Arc<SharedEvalCache> {
        &self.cache
    }

    /// One merged telemetry view of every evaluation store the engine
    /// touches: the shared cross-scenario cache (hits/misses/entries/
    /// evictions across its shards) plus the raw-metrics memos of every
    /// substrate the engine has executed so far (`memo_*` fields).
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.cache.stats();
        let mut sources = self
            .memo_sources
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        sources.retain(|weak| match weak.upgrade() {
            Some(substrate) => {
                stats.absorb_memo(substrate.memo_stats());
                true
            }
            None => false,
        });
        stats
    }

    /// Verifies that `namespace` is only ever used with one substrate/task
    /// fingerprint, recording it on first use.
    ///
    /// # Panics
    /// When the namespace was previously used (in this process, or in the
    /// process a seeded snapshot came from) with a different fingerprint —
    /// sharing evaluations across incompatible search spaces corrupts
    /// results silently, so it is rejected loudly.
    fn guard_namespace(&self, namespace: &str, substrate: &dyn Substrate) {
        let fingerprint = substrate.fingerprint();
        let key = SharedEvalCache::namespace_key(namespace);
        let mut guard = self
            .namespace_guard
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let seen = *guard.entry(key).or_insert(fingerprint);
        assert_eq!(
            seen, fingerprint,
            "cache namespace {namespace:?} re-used over an incompatible substrate/task \
             (fingerprint {fingerprint:#x} vs recorded {seen:#x}); use a distinct namespace \
             per search space"
        );
    }

    /// The fingerprint recorded for a namespace key
    /// ([`SharedEvalCache::namespace_key`]), if any — lets callers reject a
    /// conflicting registration gracefully before [`Engine::run_scenario`]
    /// would panic on it.
    pub fn namespace_fingerprint(&self, key: u64) -> Option<u64> {
        self.namespace_guard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .copied()
    }

    /// Every recorded `(namespace key, fingerprint)` pair, sorted by key —
    /// the guard state snapshots persist alongside the cache contents, so
    /// the cross-substrate protection survives a restart.
    pub fn namespace_fingerprints(&self) -> Vec<(u64, u64)> {
        let guard = self
            .namespace_guard
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut pairs: Vec<(u64, u64)> = guard.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        pairs
    }

    /// Seeds recorded namespace fingerprints (from a restored snapshot).
    /// Pairs already recorded in this process keep their first-seen value.
    pub fn seed_namespace_fingerprints(&self, pairs: &[(u64, u64)]) {
        let mut guard = self
            .namespace_guard
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for &(key, fingerprint) in pairs {
            guard.entry(key).or_insert(fingerprint);
        }
    }

    /// Remembers `substrate` (weakly, deduplicated) for memo telemetry.
    fn track_memo_source(&self, substrate: &Arc<dyn Substrate>) {
        let mut sources = self
            .memo_sources
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let ptr = Arc::as_ptr(substrate);
        if !sources.iter().any(|w| std::ptr::eq(w.as_ptr(), ptr)) {
            sources.push(Arc::downgrade(substrate));
        }
    }

    /// Valuates a batch of states against one substrate in a single
    /// thread-pool pass — the batched oracle path the service layer groups
    /// concurrent requests onto.
    ///
    /// Each *distinct* state is resolved once: answered from the shared
    /// cache under `namespace` when recorded, trained fresh otherwise (and
    /// published back), with up to [`EngineConfig::worker_threads`] states
    /// in flight at a time. Results come back aligned with `states`;
    /// duplicates within the batch share one resolution.
    pub fn valuate_states(
        &self,
        namespace: &str,
        substrate: &Arc<dyn Substrate>,
        states: &[StateBitmap],
    ) -> BatchValuation {
        self.guard_namespace(namespace, substrate.as_ref());
        self.track_memo_source(substrate);
        // Implicit parentage: a batch valuated from inside a traced call
        // tree (prewarm under a drain span, a traced job) inherits that
        // trace from the thread-local span stack.
        let _span = self.telemetry.tracer.span("valuation");
        let hook = self.cache.handle(namespace);
        let mut unique: Vec<&StateBitmap> = Vec::new();
        let mut index_of: HashMap<&StateBitmap, usize> = HashMap::new();
        let slot: Vec<usize> = states
            .iter()
            .map(|state| {
                *index_of.entry(state).or_insert_with(|| {
                    unique.push(state);
                    unique.len() - 1
                })
            })
            .collect();
        let resolved: Vec<(SharedEvaluation, bool)> =
            parallel_map(unique.len(), self.config.worker_threads, |i| {
                let bitmap = unique[i];
                if let Some(hit) = hook.lookup(bitmap) {
                    return (hit, true);
                }
                let raw = substrate.evaluate_raw(bitmap);
                let perf = substrate.measures().normalise(&raw);
                let evaluation = SharedEvaluation { raw, perf };
                hook.record(bitmap, &evaluation);
                (evaluation, false)
            });
        let shared_hits = resolved.iter().filter(|(_, hit)| *hit).count();
        let trained = unique.len() - shared_hits;
        self.record_valuations(namespace, trained as u64, shared_hits as u64);
        if states.len() > unique.len() {
            self.telemetry
                .metrics
                .counter(
                    "engine_batch_dedup_saved_total",
                    "Valuations avoided because duplicate states within one batch share a resolution.",
                )
                .add((states.len() - unique.len()) as u64);
        }
        BatchValuation {
            unique_states: unique.len(),
            shared_hits,
            trained,
            evaluations: slot.into_iter().map(|i| resolved[i].0.clone()).collect(),
        }
    }

    /// Attributes paid (oracle-trained) vs cache-served valuations to a
    /// namespace — the per-tenant cost-accounting counters.
    fn record_valuations(&self, namespace: &str, paid: u64, cached: u64) {
        if paid > 0 {
            self.telemetry
                .metrics
                .counter_with(
                    "engine_paid_valuations_total",
                    "Oracle valuations paid for (model training runs) per cache namespace.",
                    &[("namespace", namespace)],
                )
                .add(paid);
        }
        if cached > 0 {
            self.telemetry
                .metrics
                .counter_with(
                    "engine_cached_valuations_total",
                    "Oracle valuations answered by the shared cache per cache namespace.",
                    &[("namespace", namespace)],
                )
                .add(cached);
        }
    }

    /// Runs one scenario on the calling thread (the wave expander may still
    /// fan out to [`EngineConfig::worker_threads`]).
    pub fn run_scenario(&self, scenario: &Scenario) -> ScenarioOutcome {
        self.run_scenario_traced(scenario, TraceContext::NONE)
    }

    /// [`Engine::run_scenario`] under an explicit trace context: the
    /// scenario span (and every wave/valuation span opened beneath it)
    /// stitches into `trace`'s trace instead of starting an orphan — the
    /// engine end of the request path the service carries across its
    /// executor thread hop. [`TraceContext::NONE`] falls back to the
    /// implicit thread-local parentage.
    pub fn run_scenario_traced(&self, scenario: &Scenario, trace: TraceContext) -> ScenarioOutcome {
        let start = Instant::now();
        self.guard_namespace(scenario.namespace(), scenario.substrate.as_ref());
        self.track_memo_source(&scenario.substrate);
        let hook = self.cache.handle(scenario.namespace());
        let substrate: &dyn Substrate = scenario.substrate.as_ref();
        // The exact algorithm is oracle-valuated by definition; every other
        // algorithm honours the scenario's estimator mode.
        let mode = match scenario.algorithm {
            Algorithm::Exact => EstimatorMode::Oracle,
            _ => scenario.config.estimator,
        };
        let ctx = ValuationContext::new(substrate, mode).with_hook(hook);
        let threads = self.config.worker_threads;
        let _span = if trace.is_none() {
            self.telemetry.tracer.span("scenario")
        } else {
            self.telemetry.tracer.span_with("scenario", trace)
        };
        // Install the engine's telemetry as the ambient for the algorithm
        // call tree, so deep layers (the wave expander) can time themselves
        // without any signature changes.
        let _ = modis_core::dominance_index::take_tally();
        let result = telemetry::with_ambient(self.telemetry.clone(), || match scenario.algorithm {
            Algorithm::Apx => parallel_apx_modis_with_context(&ctx, &scenario.config, threads),
            Algorithm::Exact => parallel_exact_modis_with_context(&ctx, &scenario.config, threads),
            Algorithm::Bi => bi_modis_with_context(&ctx, &scenario.config, true).0,
            Algorithm::NoBi => bi_modis_with_context(&ctx, &scenario.config, false).0,
            Algorithm::Div => div_modis_with_context(&ctx, &scenario.config),
        });
        // The dominance kernels tally their work on the calling thread;
        // attribute this scenario's share to its namespace.
        let (dom_comparisons, dom_pruned) = modis_core::dominance_index::take_tally();
        if dom_comparisons > 0 || dom_pruned > 0 {
            let labels = [("namespace", scenario.namespace())];
            self.telemetry
                .metrics
                .counter_with(
                    "engine_dominance_comparisons_total",
                    "Dominance comparisons performed by skyline kernels, per namespace.",
                    &labels,
                )
                .add(dom_comparisons);
            self.telemetry
                .metrics
                .counter_with(
                    "engine_dominance_pruned_total",
                    "Dominance comparisons avoided by skyline kernels, per namespace.",
                    &labels,
                )
                .add(dom_pruned);
        }
        let outcome = ScenarioOutcome {
            name: scenario.name.clone(),
            algorithm: scenario.algorithm,
            result,
            wall_seconds: start.elapsed().as_secs_f64(),
            substrate_cache: substrate.memo_stats(),
        };
        self.record_valuations(
            scenario.namespace(),
            outcome.valuation_cost() as u64,
            outcome.shared_hits() as u64,
        );
        self.telemetry
            .metrics
            .histogram(
                "engine_scenario_us",
                "Wall time of one scenario run, microseconds.",
            )
            .record_duration(start.elapsed());
        outcome
    }

    /// Executes a suite of scenarios, at most
    /// [`EngineConfig::scenario_parallelism`] concurrently, and returns the
    /// outcomes in registration order.
    ///
    /// Each scenario's own result is independent of scheduling, but when
    /// scenarios *share a cache namespace* the hit/miss split between them
    /// depends on completion order; totals (states valuated per scenario,
    /// skyline contents) do not.
    pub fn run_suite(&self, scenarios: &[Scenario]) -> SuiteResult {
        let start = Instant::now();
        let outcomes = parallel_map(scenarios.len(), self.config.scenario_parallelism, |i| {
            self.run_scenario(&scenarios[i])
        });
        SuiteResult {
            outcomes,
            cache: self.cache_stats(),
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modis_core::config::ModisConfig;
    use modis_core::substrate::mock::MockSubstrate;

    fn oracle_config() -> ModisConfig {
        ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_max_states(120)
            .with_max_level(5)
    }

    fn mock_suite(shared_namespace: bool) -> Vec<Scenario> {
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(8));
        [
            Algorithm::Apx,
            Algorithm::NoBi,
            Algorithm::Bi,
            Algorithm::Div,
        ]
        .into_iter()
        .map(|alg| {
            let s = Scenario::new(
                format!("mock-{}", alg.name()),
                substrate.clone(),
                alg,
                oracle_config(),
            );
            if shared_namespace {
                s.with_cache_namespace("mock-pool")
            } else {
                s
            }
        })
        .collect()
    }

    #[test]
    fn suite_returns_outcomes_in_registration_order() {
        let engine = Engine::new(EngineConfig::default().with_scenario_parallelism(4));
        let suite = engine.run_suite(&mock_suite(false));
        assert_eq!(suite.outcomes.len(), 4);
        assert_eq!(suite.outcomes[0].algorithm, Algorithm::Apx);
        assert_eq!(suite.outcomes[3].algorithm, Algorithm::Div);
        assert!(suite.outcomes.iter().all(|o| !o.result.is_empty()));
        assert!(suite.outcome("mock-BiMODis").is_some());
        assert!(suite.outcome("absent").is_none());
    }

    #[test]
    fn shared_namespace_produces_cache_hits() {
        let engine = Engine::new(EngineConfig::default().with_scenario_parallelism(1));
        let suite = engine.run_suite(&mock_suite(true));
        // All four scenarios search the same space from the same start state;
        // everything after the first scenario's valuations should hit.
        assert!(suite.total_shared_hits() > 0, "expected shared-cache hits");
        assert!(suite.cache.hits >= suite.total_shared_hits());
        assert!(suite.cache.entries > 0);
    }

    #[test]
    fn isolated_namespaces_do_not_share() {
        let engine = Engine::new(EngineConfig::default().with_scenario_parallelism(2));
        let suite = engine.run_suite(&mock_suite(false));
        assert_eq!(suite.total_shared_hits(), 0);
    }

    #[test]
    #[should_panic(expected = "re-used over an incompatible substrate/task")]
    fn namespace_guard_rejects_incompatible_substrates() {
        let engine = Engine::new(EngineConfig::default().with_scenario_parallelism(1));
        let a: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(6));
        let b: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(8));
        engine.run_scenario(
            &Scenario::new("a", a, Algorithm::Apx, oracle_config()).with_cache_namespace("shared"),
        );
        // Different unit universe under the same namespace: rejected.
        engine.run_scenario(
            &Scenario::new("b", b, Algorithm::Apx, oracle_config()).with_cache_namespace("shared"),
        );
    }

    #[test]
    fn namespace_guard_accepts_equal_fingerprints() {
        let engine = Engine::new(EngineConfig::default().with_scenario_parallelism(1));
        // Two *instances* with identical structure may share a namespace.
        let a: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(6));
        let b: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(6));
        engine.run_scenario(
            &Scenario::new("a", a, Algorithm::Apx, oracle_config()).with_cache_namespace("shared"),
        );
        let out = engine.run_scenario(
            &Scenario::new("b", b, Algorithm::Apx, oracle_config()).with_cache_namespace("shared"),
        );
        assert!(out.shared_hits() > 0, "identical space reuses evaluations");
    }

    #[test]
    fn valuate_states_batches_dedups_and_hits_cache() {
        let engine = Engine::new(EngineConfig::default().with_worker_threads(4));
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(8));
        let full = StateBitmap::full(8);
        let states: Vec<StateBitmap> = vec![
            full.clone(),
            full.flipped(0),
            full.clone(), // duplicate within the batch
            full.flipped(1),
        ];
        let first = engine.valuate_states("batch", &substrate, &states);
        assert_eq!(first.evaluations.len(), 4);
        assert_eq!(first.unique_states, 3);
        assert_eq!(first.trained, 3);
        assert_eq!(first.shared_hits, 0);
        // Duplicate inputs share one resolution.
        assert_eq!(first.evaluations[0], first.evaluations[2]);
        // Values match a direct oracle valuation.
        let raw = substrate.evaluate_raw(&full);
        assert_eq!(first.evaluations[0].raw, raw);
        assert_eq!(
            first.evaluations[0].perf,
            substrate.measures().normalise(&raw)
        );
        // A second batch over the same states is answered by the cache.
        let second = engine.valuate_states("batch", &substrate, &states);
        assert_eq!(second.shared_hits, 3);
        assert_eq!(second.trained, 0);
        assert_eq!(second.evaluations[1], first.evaluations[1]);
    }

    #[test]
    fn cache_stats_aggregates_substrate_memos() {
        let engine = Engine::new(EngineConfig::default());
        // MockSubstrate keeps no memo, so exercise the plumbing through a
        // tracked substrate's default stats and the shared cache counters.
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(6));
        let scenario = Scenario::new("memo", substrate, Algorithm::Apx, oracle_config());
        let outcome = engine.run_scenario(&scenario);
        assert_eq!(outcome.substrate_cache.entries, 0, "mock keeps no memo");
        let stats = engine.cache_stats();
        assert!(stats.entries > 0, "shared cache recorded valuations");
        assert_eq!(stats.memo_entries, 0);
        assert!(stats.hit_rate() >= 0.0);
    }

    #[test]
    fn concurrent_and_serial_suites_agree_on_skylines() {
        let scenarios = mock_suite(true);
        let serial =
            Engine::new(EngineConfig::default().with_scenario_parallelism(1)).run_suite(&scenarios);
        let concurrent = Engine::new(
            EngineConfig::default()
                .with_scenario_parallelism(4)
                .with_worker_threads(4),
        )
        .run_suite(&scenarios);
        for (a, b) in serial.outcomes.iter().zip(&concurrent.outcomes) {
            assert_eq!(a.result.entries.len(), b.result.entries.len(), "{}", a.name);
            for (x, y) in a.result.entries.iter().zip(&b.result.entries) {
                assert_eq!(x.bitmap, y.bitmap);
                assert_eq!(x.perf, y.perf);
            }
        }
    }
}
