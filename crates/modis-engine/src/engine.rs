//! The execution engine: runs suites of scenarios concurrently over one
//! shared evaluation cache.

use std::sync::Arc;
use std::time::Instant;

use modis_core::bimodis::bi_modis_with_context;
use modis_core::divmodis::div_modis_with_context;
use modis_core::estimator::{EstimatorMode, ValuationContext};
use modis_core::substrate::Substrate;

use crate::cache::{CacheStats, SharedEvalCache};
use crate::expand::{parallel_apx_modis_with_context, parallel_exact_modis_with_context};
use crate::pool::parallel_map;
use crate::scenario::{Algorithm, Scenario, ScenarioOutcome};

/// Engine parallelism and cache configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Threads used by the wave-parallel frontier expander *within* one
    /// scenario (Apx / Exact). 1 disables intra-scenario parallelism.
    pub worker_threads: usize,
    /// How many scenarios of a suite run concurrently.
    pub scenario_parallelism: usize,
    /// Shard count of the shared evaluation cache.
    pub cache_shards: usize,
    /// Total capacity of the shared evaluation cache (entries across all
    /// shards; 0 = unbounded). Cold entries beyond it are reclaimed by
    /// second-chance eviction and re-trained on their next visit. For tasks
    /// whose measures include wall-clock training time, a re-trained state
    /// re-measures the clock, so cross-scenario byte-stability of raw
    /// metrics holds only while the suite's distinct-state count stays
    /// within capacity (per-scenario determinism is unaffected — each
    /// scenario's `ValuationContext` record store never evicts).
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        EngineConfig {
            worker_threads: cpus,
            scenario_parallelism: cpus.clamp(1, 4),
            cache_shards: 16,
            cache_capacity: 1 << 20,
        }
    }
}

impl EngineConfig {
    /// Builder-style worker-thread setter.
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads.max(1);
        self
    }

    /// Builder-style scenario-parallelism setter.
    pub fn with_scenario_parallelism(mut self, budget: usize) -> Self {
        self.scenario_parallelism = budget.max(1);
        self
    }

    /// Builder-style cache-shard setter.
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Builder-style cache-capacity setter (0 = unbounded).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }
}

/// Result of [`Engine::run_suite`]: per-scenario outcomes (input order) plus
/// engine-level statistics.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// One outcome per scenario, in registration order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Shared evaluation-cache counters after the suite.
    pub cache: CacheStats,
    /// Wall-clock seconds for the whole suite.
    pub wall_seconds: f64,
}

impl SuiteResult {
    /// The outcome registered under `name`, if any.
    pub fn outcome(&self, name: &str) -> Option<&ScenarioOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }

    /// Total oracle valuations answered by the shared cache across the
    /// suite's scenarios.
    pub fn total_shared_hits(&self) -> usize {
        self.outcomes.iter().map(|o| o.shared_hits()).sum()
    }

    /// Total states valuated across the suite's scenarios.
    pub fn total_states_valuated(&self) -> usize {
        self.outcomes.iter().map(|o| o.result.states_valuated).sum()
    }
}

/// A reusable execution engine: one shared evaluation cache plus a
/// parallelism budget for running scenario suites.
///
/// ```
/// use std::sync::Arc;
/// use modis_core::prelude::*;
/// use modis_engine::{Algorithm, Engine, EngineConfig, Scenario};
///
/// // Tiny demo substrate (the engine works with any `Substrate`).
/// use modis_data::{Attribute, Dataset, Schema, Value};
/// let base = Dataset::from_rows(
///     "base",
///     Schema::from_attributes(vec![
///         Attribute::key("id"),
///         Attribute::feature("x"),
///         Attribute::target("y"),
///     ]),
///     (0..30)
///         .map(|i| vec![Value::Int(i), Value::Float((i % 5) as f64), Value::Float((2 * (i % 5)) as f64)])
///         .collect(),
/// )
/// .unwrap();
/// let task = TaskSpec {
///     name: "demo".into(),
///     model: ModelKind::LinearRegressor,
///     target: "y".into(),
///     key: Some("id".into()),
///     measures: MeasureSet::new(vec![
///         MeasureSpec::maximise("p_R2"),
///         MeasureSpec::minimise("p_Train", 2.0),
///     ]),
///     metric_kinds: vec![MetricKind::R2, MetricKind::TrainTime],
///     train_ratio: 0.7,
///     seed: 7,
/// };
/// let substrate: Arc<dyn Substrate> =
///     Arc::new(TableSubstrate::from_pool(&[base], task, &TableSpaceConfig::default()));
///
/// let config = ModisConfig::default().with_max_states(20).with_estimator(EstimatorMode::Oracle);
/// let engine = Engine::new(EngineConfig::default());
/// let suite = engine.run_suite(&[
///     Scenario::new("apx", substrate.clone(), Algorithm::Apx, config.clone())
///         .with_cache_namespace("demo-pool"),
///     Scenario::new("bi", substrate, Algorithm::Bi, config)
///         .with_cache_namespace("demo-pool"),
/// ]);
/// assert_eq!(suite.outcomes.len(), 2);
/// ```
pub struct Engine {
    config: EngineConfig,
    cache: Arc<SharedEvalCache>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// Creates an engine with its own shared evaluation cache, bounded at
    /// [`EngineConfig::cache_capacity`] evaluations.
    pub fn new(config: EngineConfig) -> Self {
        let cache = Arc::new(SharedEvalCache::with_capacity(
            config.cache_shards,
            config.cache_capacity,
        ));
        Engine { config, cache }
    }

    /// Creates an engine over an existing cache (lets several engines — or
    /// several suites over time — share evaluations).
    pub fn with_cache(config: EngineConfig, cache: Arc<SharedEvalCache>) -> Self {
        Engine { config, cache }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shared evaluation cache.
    pub fn cache(&self) -> &Arc<SharedEvalCache> {
        &self.cache
    }

    /// Snapshot of the shared cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs one scenario on the calling thread (the wave expander may still
    /// fan out to [`EngineConfig::worker_threads`]).
    pub fn run_scenario(&self, scenario: &Scenario) -> ScenarioOutcome {
        let start = Instant::now();
        let hook = self.cache.handle(scenario.namespace());
        let substrate: &dyn Substrate = scenario.substrate.as_ref();
        // The exact algorithm is oracle-valuated by definition; every other
        // algorithm honours the scenario's estimator mode.
        let mode = match scenario.algorithm {
            Algorithm::Exact => EstimatorMode::Oracle,
            _ => scenario.config.estimator,
        };
        let ctx = ValuationContext::new(substrate, mode).with_hook(hook);
        let threads = self.config.worker_threads;
        let result = match scenario.algorithm {
            Algorithm::Apx => parallel_apx_modis_with_context(&ctx, &scenario.config, threads),
            Algorithm::Exact => parallel_exact_modis_with_context(&ctx, &scenario.config, threads),
            Algorithm::Bi => bi_modis_with_context(&ctx, &scenario.config, true).0,
            Algorithm::NoBi => bi_modis_with_context(&ctx, &scenario.config, false).0,
            Algorithm::Div => div_modis_with_context(&ctx, &scenario.config),
        };
        ScenarioOutcome {
            name: scenario.name.clone(),
            algorithm: scenario.algorithm,
            result,
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Executes a suite of scenarios, at most
    /// [`EngineConfig::scenario_parallelism`] concurrently, and returns the
    /// outcomes in registration order.
    ///
    /// Each scenario's own result is independent of scheduling, but when
    /// scenarios *share a cache namespace* the hit/miss split between them
    /// depends on completion order; totals (states valuated per scenario,
    /// skyline contents) do not.
    pub fn run_suite(&self, scenarios: &[Scenario]) -> SuiteResult {
        let start = Instant::now();
        let outcomes = parallel_map(scenarios.len(), self.config.scenario_parallelism, |i| {
            self.run_scenario(&scenarios[i])
        });
        SuiteResult {
            outcomes,
            cache: self.cache.stats(),
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modis_core::config::ModisConfig;
    use modis_core::substrate::mock::MockSubstrate;

    fn oracle_config() -> ModisConfig {
        ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_max_states(120)
            .with_max_level(5)
    }

    fn mock_suite(shared_namespace: bool) -> Vec<Scenario> {
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(8));
        [
            Algorithm::Apx,
            Algorithm::NoBi,
            Algorithm::Bi,
            Algorithm::Div,
        ]
        .into_iter()
        .map(|alg| {
            let s = Scenario::new(
                format!("mock-{}", alg.name()),
                substrate.clone(),
                alg,
                oracle_config(),
            );
            if shared_namespace {
                s.with_cache_namespace("mock-pool")
            } else {
                s
            }
        })
        .collect()
    }

    #[test]
    fn suite_returns_outcomes_in_registration_order() {
        let engine = Engine::new(EngineConfig::default().with_scenario_parallelism(4));
        let suite = engine.run_suite(&mock_suite(false));
        assert_eq!(suite.outcomes.len(), 4);
        assert_eq!(suite.outcomes[0].algorithm, Algorithm::Apx);
        assert_eq!(suite.outcomes[3].algorithm, Algorithm::Div);
        assert!(suite.outcomes.iter().all(|o| !o.result.is_empty()));
        assert!(suite.outcome("mock-BiMODis").is_some());
        assert!(suite.outcome("absent").is_none());
    }

    #[test]
    fn shared_namespace_produces_cache_hits() {
        let engine = Engine::new(EngineConfig::default().with_scenario_parallelism(1));
        let suite = engine.run_suite(&mock_suite(true));
        // All four scenarios search the same space from the same start state;
        // everything after the first scenario's valuations should hit.
        assert!(suite.total_shared_hits() > 0, "expected shared-cache hits");
        assert!(suite.cache.hits >= suite.total_shared_hits());
        assert!(suite.cache.entries > 0);
    }

    #[test]
    fn isolated_namespaces_do_not_share() {
        let engine = Engine::new(EngineConfig::default().with_scenario_parallelism(2));
        let suite = engine.run_suite(&mock_suite(false));
        assert_eq!(suite.total_shared_hits(), 0);
    }

    #[test]
    fn concurrent_and_serial_suites_agree_on_skylines() {
        let scenarios = mock_suite(true);
        let serial =
            Engine::new(EngineConfig::default().with_scenario_parallelism(1)).run_suite(&scenarios);
        let concurrent = Engine::new(
            EngineConfig::default()
                .with_scenario_parallelism(4)
                .with_worker_threads(4),
        )
        .run_suite(&scenarios);
        for (a, b) in serial.outcomes.iter().zip(&concurrent.outcomes) {
            assert_eq!(a.result.entries.len(), b.result.entries.len(), "{}", a.name);
            for (x, y) in a.result.entries.iter().zip(&b.result.entries) {
                assert_eq!(x.bitmap, y.bitmap);
                assert_eq!(x.perf, y.perf);
            }
        }
    }
}
