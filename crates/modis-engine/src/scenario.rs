//! Scenario registry types: a *scenario* names one `(substrate × algorithm ×
//! config)` job, and a suite is an ordered list of scenarios the engine
//! executes under a parallelism budget.

use std::sync::Arc;

use modis_core::config::{ModisConfig, SkylineResult};
use modis_core::substrate::{Substrate, SubstrateCacheStats};

/// Which MODis search a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// ApxMODis — reduce-from-universal `(N, ε)`-approximation
    /// (wave-parallel in the engine).
    Apx,
    /// NOBiMODis — bi-directional search without correlation pruning.
    NoBi,
    /// BiMODis — bi-directional search with correlation pruning.
    Bi,
    /// DivMODis — diversified skyline generation.
    Div,
    /// The exact Pareto front over the bounded space (wave-parallel in the
    /// engine; always oracle-valuated).
    Exact,
}

impl Algorithm {
    /// Human-readable algorithm name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Apx => "ApxMODis",
            Algorithm::NoBi => "NOBiMODis",
            Algorithm::Bi => "BiMODis",
            Algorithm::Div => "DivMODis",
            Algorithm::Exact => "Exact",
        }
    }
}

/// One named unit of engine work: a search space, an algorithm and its
/// configuration.
#[derive(Clone)]
pub struct Scenario {
    /// Unique display name of the scenario.
    pub name: String,
    /// The search space (shared, thread-safe).
    pub substrate: Arc<dyn Substrate>,
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Search configuration.
    pub config: ModisConfig,
    /// Evaluation-cache namespace. Scenarios over the *same substrate and
    /// task* may share a namespace so states valuated by one are free for
    /// the others; defaults to the scenario name (no sharing).
    pub cache_namespace: Option<String>,
}

impl Scenario {
    /// Creates a scenario with the default (isolated) cache namespace.
    pub fn new(
        name: impl Into<String>,
        substrate: Arc<dyn Substrate>,
        algorithm: Algorithm,
        config: ModisConfig,
    ) -> Self {
        Scenario {
            name: name.into(),
            substrate,
            algorithm,
            config,
            cache_namespace: None,
        }
    }

    /// Builder-style cache-namespace setter; scenarios passing the same
    /// string share oracle evaluations.
    pub fn with_cache_namespace(mut self, namespace: impl Into<String>) -> Self {
        self.cache_namespace = Some(namespace.into());
        self
    }

    /// The effective cache namespace.
    pub fn namespace(&self) -> &str {
        self.cache_namespace.as_deref().unwrap_or(&self.name)
    }
}

/// The result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name (as registered).
    pub name: String,
    /// Algorithm that produced the skyline.
    pub algorithm: Algorithm,
    /// The skyline result (entries, counters, elapsed time).
    pub result: SkylineResult,
    /// Wall-clock seconds spent on this scenario inside the engine.
    pub wall_seconds: f64,
    /// The substrate memo's counters right after the run — how much
    /// raw-metric state the scenario's search space is holding for reuse.
    pub substrate_cache: SubstrateCacheStats,
}

impl ScenarioOutcome {
    /// Oracle valuations this run answered from the shared cache.
    pub fn shared_hits(&self) -> usize {
        self.result.stats.shared_hits
    }

    /// The run's paid valuation cost (oracle trainings + surrogate
    /// predictions) — the signal cost-aware scheduling feeds on.
    pub fn valuation_cost(&self) -> usize {
        self.result.valuation_cost()
    }
}
