//! The engine's shared, sharded evaluation cache.
//!
//! Oracle valuations dominate MODis wall-clock time: every state valuation
//! materialises an artefact and trains a model. Bi-directional passes and
//! scenarios that search the same pool under different configurations
//! revisit many states, so the engine keeps one process-wide store of
//! `(namespace, state) → evaluation` behind an [`EvaluationHook`] and hands
//! each scenario a namespaced handle. Sharding keeps lock contention low
//! when many worker threads probe the cache concurrently.
//!
//! Each shard is a bounded [`ClockCache`]: when a capacity is configured
//! (see [`SharedEvalCache::with_capacity`] and
//! [`crate::EngineConfig::cache_capacity`]), cold evaluations are reclaimed
//! by second-chance eviction instead of growing the store without bound
//! over long suites; an evicted state is simply re-trained on its next
//! visit. Evictions are surfaced in [`CacheStats::evictions`].
//!
//! Namespaces isolate substrates from one another: a `StateBitmap` only
//! identifies a dataset *relative to* the substrate that produced it, so two
//! scenarios may share a namespace only when they search the same substrate
//! with the same task (measures included). Scenarios that must not share
//! simply use distinct namespace strings.

use std::borrow::Borrow;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use modis_core::clock_cache::ClockCache;
use modis_core::estimator::{EvaluationHook, SharedEvaluation};
use modis_data::StateBitmap;

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Evaluations currently stored.
    pub entries: usize,
    /// Evaluations reclaimed by the clock eviction policy.
    pub evictions: usize,
}

type CacheKey = (u64, StateBitmap);

/// Borrowed-key view of a `(namespace, StateBitmap)` cache key, so probes
/// can be answered without cloning the bitmap into an owned tuple: both the
/// owned `CacheKey` and a transient `(u64, &StateBitmap)` present as
/// `dyn KeyPair`, and the `Hash`/`Eq` impls below mirror the owned tuple's
/// field-sequential semantics exactly (the `Borrow` contract).
trait KeyPair {
    fn namespace(&self) -> u64;
    fn bitmap(&self) -> &StateBitmap;
}

impl KeyPair for CacheKey {
    fn namespace(&self) -> u64 {
        self.0
    }
    fn bitmap(&self) -> &StateBitmap {
        &self.1
    }
}

impl KeyPair for (u64, &StateBitmap) {
    fn namespace(&self) -> u64 {
        self.0
    }
    fn bitmap(&self) -> &StateBitmap {
        self.1
    }
}

impl<'a> Borrow<dyn KeyPair + 'a> for CacheKey {
    fn borrow(&self) -> &(dyn KeyPair + 'a) {
        self
    }
}

impl Hash for dyn KeyPair + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.namespace().hash(state);
        self.bitmap().hash(state);
    }
}

impl PartialEq for dyn KeyPair + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.namespace() == other.namespace() && self.bitmap() == other.bitmap()
    }
}

impl Eq for dyn KeyPair + '_ {}

struct Shard {
    map: Mutex<ClockCache<CacheKey, SharedEvaluation>>,
}

/// A process-wide evaluation cache, sharded by key hash.
///
/// Create once per [`crate::Engine`] (or share one across engines), then
/// obtain per-scenario [`CacheHandle`]s via [`SharedEvalCache::handle`].
pub struct SharedEvalCache {
    shards: Vec<Shard>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SharedEvalCache {
    /// Creates an unbounded cache with `shards` independent lock domains
    /// (clamped to a power of two, minimum 1).
    pub fn new(shards: usize) -> Self {
        Self::with_capacity(shards, 0)
    }

    /// Creates a cache bounded at roughly `capacity` total evaluations
    /// (0 = unbounded), spread evenly over the shards; each shard evicts
    /// with the second-chance clock policy once its share fills.
    pub fn with_capacity(shards: usize, capacity: usize) -> Self {
        let shards = shards.clamp(1, 1 << 16).next_power_of_two();
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards).max(1)
        };
        SharedEvalCache {
            shards: (0..shards)
                .map(|_| Shard {
                    map: Mutex::new(ClockCache::new(per_shard)),
                })
                .collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// A handle scoped to `namespace`, usable as an
    /// [`EvaluationHook`] on a `ValuationContext`.
    pub fn handle(self: &Arc<Self>, namespace: &str) -> Arc<CacheHandle> {
        let mut hasher = DefaultHasher::new();
        namespace.hash(&mut hasher);
        Arc::new(CacheHandle {
            cache: Arc::clone(self),
            namespace: hasher.finish(),
        })
    }

    /// Snapshot of the hit/miss/entry/eviction counters.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut evictions) = (0, 0);
        for shard in &self.shards {
            let map = shard.map.lock().unwrap_or_else(PoisonError::into_inner);
            entries += map.len();
            evictions += map.evictions();
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions,
        }
    }

    /// Picks the shard for a key without cloning the bitmap: `(u64, &T)`
    /// hashes identically to `(u64, T)`.
    fn shard_for(&self, namespace: u64, bitmap: &StateBitmap) -> &Shard {
        let mut hasher = DefaultHasher::new();
        (namespace, bitmap).hash(&mut hasher);
        // Length is a power of two, so the mask picks a uniform shard.
        &self.shards[(hasher.finish() as usize) & (self.shards.len() - 1)]
    }

    fn lookup(&self, namespace: u64, bitmap: &StateBitmap) -> Option<SharedEvaluation> {
        let shard = self.shard_for(namespace, bitmap);
        // Probe through the borrowed-key view: a hit costs no allocation.
        let found = shard
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(namespace, bitmap) as &dyn KeyPair)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn record(&self, namespace: u64, bitmap: &StateBitmap, evaluation: &SharedEvaluation) {
        let shard = self.shard_for(namespace, bitmap);
        let key = (namespace, bitmap.clone());
        shard
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, evaluation.clone());
    }
}

/// A namespaced view of a [`SharedEvalCache`]; implements
/// [`EvaluationHook`] so it can be installed on a `ValuationContext`.
pub struct CacheHandle {
    cache: Arc<SharedEvalCache>,
    namespace: u64,
}

impl EvaluationHook for CacheHandle {
    fn lookup(&self, bitmap: &StateBitmap) -> Option<SharedEvaluation> {
        self.cache.lookup(self.namespace, bitmap)
    }

    fn record(&self, bitmap: &StateBitmap, evaluation: &SharedEvaluation) {
        self.cache.record(self.namespace, bitmap, evaluation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(v: f64) -> SharedEvaluation {
        SharedEvaluation {
            raw: vec![v],
            perf: vec![v],
        }
    }

    #[test]
    fn records_and_hits_within_a_namespace() {
        let cache = Arc::new(SharedEvalCache::new(8));
        let handle = cache.handle("t1");
        let b = StateBitmap::full(5);
        assert!(handle.lookup(&b).is_none());
        handle.record(&b, &eval(0.25));
        assert_eq!(handle.lookup(&b), Some(eval(0.25)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn namespaces_are_isolated() {
        let cache = Arc::new(SharedEvalCache::new(4));
        let a = cache.handle("task-a");
        let b = cache.handle("task-b");
        let bitmap = StateBitmap::full(3);
        a.record(&bitmap, &eval(1.0));
        assert!(b.lookup(&bitmap).is_none());
        assert_eq!(a.lookup(&bitmap), Some(eval(1.0)));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn handles_share_one_store() {
        let cache = Arc::new(SharedEvalCache::new(2));
        let h1 = cache.handle("shared");
        let h2 = cache.handle("shared");
        let bitmap = StateBitmap::empty(4);
        h1.record(&bitmap, &eval(0.5));
        assert_eq!(h2.lookup(&bitmap), Some(eval(0.5)));
    }

    #[test]
    fn overwrite_does_not_double_count_entries() {
        let cache = Arc::new(SharedEvalCache::new(1));
        let h = cache.handle("n");
        let bitmap = StateBitmap::full(2);
        h.record(&bitmap, &eval(0.1));
        h.record(&bitmap, &eval(0.2));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(h.lookup(&bitmap), Some(eval(0.2)));
    }

    #[test]
    fn bounded_cache_evicts_and_serves_survivors() {
        // One shard, room for 4 evaluations.
        let cache = Arc::new(SharedEvalCache::with_capacity(1, 4));
        let h = cache.handle("bounded");
        for i in 0..16 {
            let mut b = StateBitmap::empty(16);
            b.set(i, true);
            h.record(&b, &eval(i as f64));
        }
        let stats = cache.stats();
        assert!(stats.entries <= 4, "entries = {}", stats.entries);
        assert_eq!(stats.evictions, 12);
        // Survivors still answer; evicted states simply miss.
        let answered = (0..16)
            .filter(|&i| {
                let mut b = StateBitmap::empty(16);
                b.set(i, true);
                h.lookup(&b).is_some()
            })
            .count();
        assert_eq!(answered, 4);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(SharedEvalCache::new(16));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let handle = cache.handle("stress");
                scope.spawn(move || {
                    for i in 0..50 {
                        let mut bitmap = StateBitmap::empty(16);
                        bitmap.set(i % 16, true);
                        handle.record(&bitmap, &eval((t * 50 + i) as f64));
                        assert!(handle.lookup(&bitmap).is_some());
                    }
                });
            }
        });
        // 16 distinct states across all threads.
        assert_eq!(cache.stats().entries, 16);
    }
}
