//! The engine's shared, sharded evaluation cache.
//!
//! Oracle valuations dominate MODis wall-clock time: every state valuation
//! materialises an artefact and trains a model. Bi-directional passes and
//! scenarios that search the same pool under different configurations
//! revisit many states, so the engine keeps one process-wide store of
//! `(namespace, state) → evaluation` behind an [`EvaluationHook`] and hands
//! each scenario a namespaced handle. Sharding keeps lock contention low
//! when many worker threads probe the cache concurrently.
//!
//! Each shard is a bounded [`ClockCache`]: when a capacity is configured
//! (see [`SharedEvalCache::with_capacity`] and
//! [`crate::EngineConfig::cache_capacity`]), cold evaluations are reclaimed
//! by second-chance eviction instead of growing the store without bound
//! over long suites; an evicted state is simply re-trained on its next
//! visit. Evictions are surfaced in [`CacheStats::evictions`].
//!
//! Namespaces isolate substrates from one another: a `StateBitmap` only
//! identifies a dataset *relative to* the substrate that produced it, so two
//! scenarios may share a namespace only when they search the same substrate
//! with the same task (measures included). Scenarios that must not share
//! simply use distinct namespace strings.

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use modis_core::clock_cache::ClockCache;
use modis_core::codec::{fnv1a, FNV_OFFSET_BASIS};
use modis_core::estimator::{EvaluationHook, SharedEvaluation};
use modis_core::substrate::SubstrateCacheStats;
use modis_data::StateBitmap;

/// Counters describing cache effectiveness. The first four fields describe
/// the engine's shared evaluation cache (merged across its shards); the
/// `memo_*` fields aggregate the per-substrate raw-metrics memos of every
/// substrate the engine has executed, so one struct answers "how much
/// evaluated state is this process holding, and is it paying off".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the shared cache.
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Evaluations currently stored in the shared cache.
    pub entries: usize,
    /// Evaluations reclaimed by the clock eviction policy.
    pub evictions: usize,
    /// Entries across the substrate-level memos of every substrate the
    /// engine has run (0 until a scenario executes).
    pub memo_entries: usize,
    /// Evictions across those substrate memos.
    pub memo_evictions: usize,
}

impl CacheStats {
    /// Folds a substrate memo's counters into the aggregate view.
    pub fn absorb_memo(&mut self, memo: SubstrateCacheStats) {
        self.memo_entries += memo.entries;
        self.memo_evictions += memo.evictions;
    }

    /// Hit rate of the shared cache in `[0, 1]` (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type CacheKey = (u64, StateBitmap);

/// Borrowed-key view of a `(namespace, StateBitmap)` cache key, so probes
/// can be answered without cloning the bitmap into an owned tuple: both the
/// owned `CacheKey` and a transient `(u64, &StateBitmap)` present as
/// `dyn KeyPair`, and the `Hash`/`Eq` impls below mirror the owned tuple's
/// field-sequential semantics exactly (the `Borrow` contract).
trait KeyPair {
    fn namespace(&self) -> u64;
    fn bitmap(&self) -> &StateBitmap;
}

impl KeyPair for CacheKey {
    fn namespace(&self) -> u64 {
        self.0
    }
    fn bitmap(&self) -> &StateBitmap {
        &self.1
    }
}

impl KeyPair for (u64, &StateBitmap) {
    fn namespace(&self) -> u64 {
        self.0
    }
    fn bitmap(&self) -> &StateBitmap {
        self.1
    }
}

impl<'a> Borrow<dyn KeyPair + 'a> for CacheKey {
    fn borrow(&self) -> &(dyn KeyPair + 'a) {
        self
    }
}

impl Hash for dyn KeyPair + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.namespace().hash(state);
        self.bitmap().hash(state);
    }
}

impl PartialEq for dyn KeyPair + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.namespace() == other.namespace() && self.bitmap() == other.bitmap()
    }
}

impl Eq for dyn KeyPair + '_ {}

struct Shard {
    map: Mutex<ClockCache<CacheKey, SharedEvaluation>>,
}

/// A process-wide evaluation cache, sharded by key hash.
///
/// Create once per [`crate::Engine`] (or share one across engines), then
/// obtain per-scenario [`CacheHandle`]s via [`SharedEvalCache::handle`].
pub struct SharedEvalCache {
    shards: Vec<Shard>,
    per_shard_capacity: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// One evaluation of a shard snapshot, in clock-slot order.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportedEvaluation {
    /// Hashed cache namespace the evaluation belongs to.
    pub namespace: u64,
    /// The valuated state.
    pub bitmap: StateBitmap,
    /// The slot's second-chance referenced bit at export time.
    pub referenced: bool,
    /// The recorded oracle evaluation.
    pub evaluation: SharedEvaluation,
}

/// One shard's contents: entries in slot order plus the clock-hand
/// position, which together determine future eviction behaviour.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardExport {
    /// Clock-hand position at export time.
    pub hand: usize,
    /// Entries in slot order.
    pub entries: Vec<ExportedEvaluation>,
}

impl SharedEvalCache {
    /// Creates an unbounded cache with `shards` independent lock domains
    /// (clamped to a power of two, minimum 1).
    pub fn new(shards: usize) -> Self {
        Self::with_capacity(shards, 0)
    }

    /// Creates a cache bounded at roughly `capacity` total evaluations
    /// (0 = unbounded), spread evenly over the shards; each shard evicts
    /// with the second-chance clock policy once its share fills.
    pub fn with_capacity(shards: usize, capacity: usize) -> Self {
        let shards = shards.clamp(1, 1 << 16).next_power_of_two();
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards).max(1)
        };
        SharedEvalCache {
            shards: (0..shards)
                .map(|_| Shard {
                    map: Mutex::new(ClockCache::new(per_shard)),
                })
                .collect(),
            per_shard_capacity: per_shard,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard entry capacity (0 = unbounded).
    pub fn per_shard_capacity(&self) -> usize {
        self.per_shard_capacity
    }

    /// Exports every shard's contents — entries in clock-slot order with
    /// their referenced bits, plus the hand position — for persistence.
    /// Shards are locked one at a time, so the export is per-shard (not
    /// globally) atomic; snapshot a quiescent cache for exact restores.
    pub fn export_shards(&self) -> Vec<ShardExport> {
        self.shards
            .iter()
            .map(|shard| {
                let map = shard.map.lock().unwrap_or_else(PoisonError::into_inner);
                ShardExport {
                    hand: map.hand(),
                    entries: map
                        .iter_slots()
                        .map(|(key, value, referenced)| ExportedEvaluation {
                            namespace: key.0,
                            bitmap: key.1.clone(),
                            referenced,
                            evaluation: value.clone(),
                        })
                        .collect(),
                }
            })
            .collect()
    }

    /// Exports only the entries belonging to the given hashed namespace
    /// keys ([`Self::namespace_key`]) — the portable unit a cluster ships
    /// between shard processes when namespace ownership moves. Slot order
    /// within each shard is preserved; the hand is reported as 0 because a
    /// filtered export is for *merging* into a live cache
    /// ([`Self::merge_exports`]), not for geometry-exact restores.
    pub fn export_namespaces(&self, keys: &[u64]) -> Vec<ShardExport> {
        self.shards
            .iter()
            .map(|shard| {
                let map = shard.map.lock().unwrap_or_else(PoisonError::into_inner);
                ShardExport {
                    hand: 0,
                    entries: map
                        .iter_slots()
                        .filter(|(key, _, _)| keys.contains(&key.0))
                        .map(|(key, value, referenced)| ExportedEvaluation {
                            namespace: key.0,
                            bitmap: key.1.clone(),
                            referenced,
                            evaluation: value.clone(),
                        })
                        .collect(),
                }
            })
            .collect()
    }

    /// A stable content digest over the entries of the given hashed
    /// namespaces: each resident `(namespace, state)` pair contributes an
    /// FNV-1a hash, XOR-folded with the entry count so the digest is
    /// independent of slot geometry, insertion order and shard count. Two
    /// caches digest equal for a namespace set **iff** they hold the same
    /// states in it (evaluations are write-once per state, so state
    /// identity is content identity). The cluster's replication driver
    /// compares digests to skip re-shipping a namespace whose replica is
    /// already current — the "incremental" in incremental delta push.
    pub fn namespace_digest(&self, keys: &[u64]) -> u64 {
        let mut digest = 0u64;
        let mut count = 0u64;
        for shard in &self.shards {
            let map = shard.map.lock().unwrap_or_else(PoisonError::into_inner);
            for (key, _, _) in map.iter_slots() {
                if keys.contains(&key.0) {
                    let mut h = fnv1a(FNV_OFFSET_BASIS, &key.0.to_le_bytes());
                    for &word in key.1.words() {
                        h = fnv1a(h, &word.to_le_bytes());
                    }
                    h = fnv1a(h, &(key.1.len() as u64).to_le_bytes());
                    digest ^= h;
                    count += 1;
                }
            }
        }
        fnv1a(digest, &count.to_le_bytes())
    }

    /// Merges exported entries into the cache through the normal hashed
    /// insertion path, returning how many were processed. Unlike
    /// [`Self::import_shards`] this never replays slot geometry or moves
    /// the clock hand, so it is safe on a cache that is already serving
    /// traffic — the shape a shard is in when a rebalanced namespace's
    /// snapshot arrives.
    pub fn merge_exports(&self, shards: Vec<ShardExport>) -> usize {
        let mut merged = 0;
        for export in shards {
            for entry in export.entries {
                self.record(entry.namespace, &entry.bitmap, &entry.evaluation);
                merged += 1;
            }
        }
        merged
    }

    /// Imports a snapshot produced by [`Self::export_shards`], returning the
    /// number of snapshot entries *processed*. (An entry may overwrite a
    /// duplicate key, and restoring more entries than a bounded shard holds
    /// evicts earlier ones, so the resident count afterwards — see
    /// [`CacheStats::entries`] — can be lower than the return value.)
    ///
    /// When the snapshot's shard count matches this cache's (and each shard
    /// fits its capacity), slots are replayed in order with their referenced
    /// bits and the hand is repositioned — the restored cache then evicts
    /// exactly as the exporter would have. Otherwise entries are re-inserted
    /// through the normal hashed-shard path: values survive byte-for-byte,
    /// but slot order and referenced bits are rebuilt from scratch.
    pub fn import_shards(&self, shards: Vec<ShardExport>) -> usize {
        let mut imported = 0;
        if shards.len() == self.shards.len() {
            for (shard, export) in self.shards.iter().zip(shards) {
                let mut map = shard.map.lock().unwrap_or_else(PoisonError::into_inner);
                for entry in export.entries {
                    let key = (entry.namespace, entry.bitmap);
                    if map.contains(&key as &dyn KeyPair)
                        || (map.capacity() != 0 && map.len() >= map.capacity())
                    {
                        map.insert(key, entry.evaluation);
                    } else {
                        map.restore_slot(key, entry.evaluation, entry.referenced);
                    }
                    imported += 1;
                }
                map.set_hand(export.hand);
            }
            return imported;
        }
        for export in shards {
            for entry in export.entries {
                self.record(entry.namespace, &entry.bitmap, &entry.evaluation);
                imported += 1;
            }
        }
        imported
    }

    /// A handle scoped to `namespace`, usable as an
    /// [`EvaluationHook`] on a `ValuationContext`.
    pub fn handle(self: &Arc<Self>, namespace: &str) -> Arc<CacheHandle> {
        Arc::new(CacheHandle {
            cache: Arc::clone(self),
            namespace: Self::namespace_key(namespace),
        })
    }

    /// Snapshot of the hit/miss/entry/eviction counters.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut evictions) = (0, 0);
        for shard in &self.shards {
            let map = shard.map.lock().unwrap_or_else(PoisonError::into_inner);
            entries += map.len();
            evictions += map.evictions();
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions,
            memo_entries: 0,
            memo_evictions: 0,
        }
    }

    /// Hashes a namespace string to the `u64` the cache keys on — the same
    /// mapping [`Self::handle`] applies, exposed so snapshot tooling can
    /// relate exported entries back to scenario namespaces.
    ///
    /// Deliberately FNV-1a rather than std's `DefaultHasher`: namespace
    /// keys are persisted inside snapshots, and `DefaultHasher`'s algorithm
    /// is unspecified and free to change between toolchains — which would
    /// make every restored entry unreachable (imports fine, zero hits).
    pub fn namespace_key(namespace: &str) -> u64 {
        fnv1a(FNV_OFFSET_BASIS, namespace.as_bytes())
    }

    /// Picks the shard for a key. Shard placement is baked into snapshots
    /// (each shard exports its own slots), so the mapping must be stable
    /// across processes and toolchains — FNV-1a over the key's bytes, not
    /// std's unspecified `DefaultHasher`.
    fn shard_for(&self, namespace: u64, bitmap: &StateBitmap) -> &Shard {
        let mut h = fnv1a(FNV_OFFSET_BASIS, &namespace.to_le_bytes());
        for &word in bitmap.words() {
            h = fnv1a(h, &word.to_le_bytes());
        }
        h = fnv1a(h, &(bitmap.len() as u64).to_le_bytes());
        // Length is a power of two, so the mask picks a uniform shard.
        &self.shards[(h as usize) & (self.shards.len() - 1)]
    }

    fn lookup(&self, namespace: u64, bitmap: &StateBitmap) -> Option<SharedEvaluation> {
        let shard = self.shard_for(namespace, bitmap);
        // Probe through the borrowed-key view: a hit costs no allocation.
        let found = shard
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(namespace, bitmap) as &dyn KeyPair)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn record(&self, namespace: u64, bitmap: &StateBitmap, evaluation: &SharedEvaluation) {
        let shard = self.shard_for(namespace, bitmap);
        let key = (namespace, bitmap.clone());
        shard
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, evaluation.clone());
    }
}

/// A namespaced view of a [`SharedEvalCache`]; implements
/// [`EvaluationHook`] so it can be installed on a `ValuationContext`.
pub struct CacheHandle {
    cache: Arc<SharedEvalCache>,
    namespace: u64,
}

impl EvaluationHook for CacheHandle {
    fn lookup(&self, bitmap: &StateBitmap) -> Option<SharedEvaluation> {
        self.cache.lookup(self.namespace, bitmap)
    }

    fn record(&self, bitmap: &StateBitmap, evaluation: &SharedEvaluation) {
        self.cache.record(self.namespace, bitmap, evaluation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(v: f64) -> SharedEvaluation {
        SharedEvaluation {
            raw: vec![v],
            perf: vec![v],
        }
    }

    #[test]
    fn records_and_hits_within_a_namespace() {
        let cache = Arc::new(SharedEvalCache::new(8));
        let handle = cache.handle("t1");
        let b = StateBitmap::full(5);
        assert!(handle.lookup(&b).is_none());
        handle.record(&b, &eval(0.25));
        assert_eq!(handle.lookup(&b), Some(eval(0.25)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn namespaces_are_isolated() {
        let cache = Arc::new(SharedEvalCache::new(4));
        let a = cache.handle("task-a");
        let b = cache.handle("task-b");
        let bitmap = StateBitmap::full(3);
        a.record(&bitmap, &eval(1.0));
        assert!(b.lookup(&bitmap).is_none());
        assert_eq!(a.lookup(&bitmap), Some(eval(1.0)));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn handles_share_one_store() {
        let cache = Arc::new(SharedEvalCache::new(2));
        let h1 = cache.handle("shared");
        let h2 = cache.handle("shared");
        let bitmap = StateBitmap::empty(4);
        h1.record(&bitmap, &eval(0.5));
        assert_eq!(h2.lookup(&bitmap), Some(eval(0.5)));
    }

    #[test]
    fn overwrite_does_not_double_count_entries() {
        let cache = Arc::new(SharedEvalCache::new(1));
        let h = cache.handle("n");
        let bitmap = StateBitmap::full(2);
        h.record(&bitmap, &eval(0.1));
        h.record(&bitmap, &eval(0.2));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(h.lookup(&bitmap), Some(eval(0.2)));
    }

    #[test]
    fn bounded_cache_evicts_and_serves_survivors() {
        // One shard, room for 4 evaluations.
        let cache = Arc::new(SharedEvalCache::with_capacity(1, 4));
        let h = cache.handle("bounded");
        for i in 0..16 {
            let mut b = StateBitmap::empty(16);
            b.set(i, true);
            h.record(&b, &eval(i as f64));
        }
        let stats = cache.stats();
        assert!(stats.entries <= 4, "entries = {}", stats.entries);
        assert_eq!(stats.evictions, 12);
        // Survivors still answer; evicted states simply miss.
        let answered = (0..16)
            .filter(|&i| {
                let mut b = StateBitmap::empty(16);
                b.set(i, true);
                h.lookup(&b).is_some()
            })
            .count();
        assert_eq!(answered, 4);
    }

    #[test]
    fn namespace_key_is_pinned_for_snapshot_compatibility() {
        // Namespace keys and shard placement persist inside snapshots, so
        // the hash must never drift — this literal is the FNV-1a of "pool".
        // If this test fails, snapshot compatibility just broke.
        assert_eq!(SharedEvalCache::namespace_key("pool"), 0x8c22f10da88b1083);
        assert_ne!(
            SharedEvalCache::namespace_key("a"),
            SharedEvalCache::namespace_key("b")
        );
    }

    #[test]
    fn export_import_round_trips_values_order_and_hand() {
        let source = Arc::new(SharedEvalCache::with_capacity(4, 256));
        let h = source.handle("roundtrip");
        for i in 0..24 {
            let mut b = StateBitmap::empty(32);
            b.set(i, true);
            h.record(&b, &eval(i as f64));
        }
        let export = source.export_shards();

        // Same geometry ⇒ exact restore (slot order, referenced bits, hand).
        let target = Arc::new(SharedEvalCache::with_capacity(4, 256));
        assert_eq!(target.import_shards(export.clone()), 24);
        assert_eq!(target.export_shards(), export);
        let th = target.handle("roundtrip");
        for i in 0..24 {
            let mut b = StateBitmap::empty(32);
            b.set(i, true);
            assert_eq!(th.lookup(&b), Some(eval(i as f64)), "entry {i}");
        }

        // Different geometry ⇒ values still all present, rehashed.
        let reshaped = Arc::new(SharedEvalCache::with_capacity(2, 256));
        assert_eq!(reshaped.import_shards(export), 24);
        assert_eq!(reshaped.stats().entries, 24);
        let rh = reshaped.handle("roundtrip");
        let mut b = StateBitmap::empty(32);
        b.set(7, true);
        assert_eq!(rh.lookup(&b), Some(eval(7.0)));
    }

    #[test]
    fn namespace_export_filters_and_merges_into_a_live_cache() {
        let source = Arc::new(SharedEvalCache::with_capacity(4, 0));
        for ns in ["keep-a", "keep-b", "drop"] {
            let h = source.handle(ns);
            for i in 0..6 {
                let mut b = StateBitmap::empty(16);
                b.set(i, true);
                h.record(&b, &eval(i as f64));
            }
        }
        let keys = [
            SharedEvalCache::namespace_key("keep-a"),
            SharedEvalCache::namespace_key("keep-b"),
        ];
        let export = source.export_namespaces(&keys);
        let exported: usize = export.iter().map(|s| s.entries.len()).sum();
        assert_eq!(exported, 12, "only the selected namespaces are exported");
        assert!(export
            .iter()
            .flat_map(|s| &s.entries)
            .all(|e| keys.contains(&e.namespace)));

        // Merge into a cache that already serves other namespaces: the
        // resident state survives, the shipped entries answer afterwards.
        let target = Arc::new(SharedEvalCache::with_capacity(2, 0));
        let resident = target.handle("resident");
        let b0 = StateBitmap::full(16);
        resident.record(&b0, &eval(9.0));
        assert_eq!(target.merge_exports(export), 12);
        assert_eq!(resident.lookup(&b0), Some(eval(9.0)));
        let ha = target.handle("keep-a");
        let mut b = StateBitmap::empty(16);
        b.set(3, true);
        assert_eq!(ha.lookup(&b), Some(eval(3.0)));
        assert!(target.handle("drop").lookup(&b).is_none());
        assert_eq!(target.stats().entries, 13);
    }

    #[test]
    fn namespace_digest_tracks_content_not_geometry() {
        let a = Arc::new(SharedEvalCache::with_capacity(4, 0));
        let b = Arc::new(SharedEvalCache::with_capacity(1, 0));
        let key = SharedEvalCache::namespace_key("repl");
        let other = SharedEvalCache::namespace_key("other");
        assert_eq!(a.namespace_digest(&[key]), b.namespace_digest(&[key]));
        let (ha, hb) = (a.handle("repl"), b.handle("repl"));
        // Same states, different insertion order and shard geometry.
        for i in 0..8 {
            let mut bm = StateBitmap::empty(16);
            bm.set(i, true);
            ha.record(&bm, &eval(i as f64));
        }
        for i in (0..8).rev() {
            let mut bm = StateBitmap::empty(16);
            bm.set(i, true);
            hb.record(&bm, &eval(i as f64));
        }
        assert_eq!(a.namespace_digest(&[key]), b.namespace_digest(&[key]));
        // Foreign namespaces do not perturb the digest…
        a.handle("other").record(&StateBitmap::full(16), &eval(1.0));
        assert_eq!(a.namespace_digest(&[key]), b.namespace_digest(&[key]));
        assert_ne!(
            a.namespace_digest(&[key, other]),
            b.namespace_digest(&[key])
        );
        // …but a new state in the set does.
        let mut bm = StateBitmap::empty(16);
        bm.set(9, true);
        ha.record(&bm, &eval(9.0));
        assert_ne!(a.namespace_digest(&[key]), b.namespace_digest(&[key]));
    }

    #[test]
    fn import_into_bounded_cache_respects_capacity() {
        let source = Arc::new(SharedEvalCache::with_capacity(1, 0));
        let h = source.handle("big");
        for i in 0..10 {
            let mut b = StateBitmap::empty(16);
            b.set(i, true);
            h.record(&b, &eval(i as f64));
        }
        let small = Arc::new(SharedEvalCache::with_capacity(1, 4));
        small.import_shards(source.export_shards());
        assert!(small.stats().entries <= 4);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(SharedEvalCache::new(16));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let handle = cache.handle("stress");
                scope.spawn(move || {
                    for i in 0..50 {
                        let mut bitmap = StateBitmap::empty(16);
                        bitmap.set(i % 16, true);
                        handle.record(&bitmap, &eval((t * 50 + i) as f64));
                        assert!(handle.lookup(&bitmap).is_some());
                    }
                });
            }
        });
        // 16 distinct states across all threads.
        assert_eq!(cache.stats().entries, 16);
    }
}
