//! The engine's shared, sharded evaluation cache.
//!
//! Oracle valuations dominate MODis wall-clock time: every state valuation
//! materialises an artefact and trains a model. Bi-directional passes and
//! scenarios that search the same pool under different configurations
//! revisit many states, so the engine keeps one process-wide store of
//! `(namespace, state) → evaluation` behind an [`EvaluationHook`] and hands
//! each scenario a namespaced handle. Sharding keeps lock contention low
//! when many worker threads probe the cache concurrently.
//!
//! Namespaces isolate substrates from one another: a `StateBitmap` only
//! identifies a dataset *relative to* the substrate that produced it, so two
//! scenarios may share a namespace only when they search the same substrate
//! with the same task (measures included). Scenarios that must not share
//! simply use distinct namespace strings.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use modis_core::estimator::{EvaluationHook, SharedEvaluation};
use modis_data::StateBitmap;

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Evaluations currently stored.
    pub entries: usize,
}

#[derive(Default)]
struct Shard {
    map: Mutex<HashMap<(u64, StateBitmap), SharedEvaluation>>,
}

/// A process-wide evaluation cache, sharded by key hash.
///
/// Create once per [`crate::Engine`] (or share one across engines), then
/// obtain per-scenario [`CacheHandle`]s via [`SharedEvalCache::handle`].
pub struct SharedEvalCache {
    shards: Vec<Shard>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    entries: AtomicUsize,
}

impl SharedEvalCache {
    /// Creates a cache with `shards` independent lock domains (clamped to a
    /// power of two, minimum 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.clamp(1, 1 << 16).next_power_of_two();
        SharedEvalCache {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
        }
    }

    /// A handle scoped to `namespace`, usable as an
    /// [`EvaluationHook`] on a `ValuationContext`.
    pub fn handle(self: &Arc<Self>, namespace: &str) -> Arc<CacheHandle> {
        let mut hasher = DefaultHasher::new();
        namespace.hash(&mut hasher);
        Arc::new(CacheHandle {
            cache: Arc::clone(self),
            namespace: hasher.finish(),
        })
    }

    /// Snapshot of the hit/miss/entry counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
        }
    }

    fn shard_for(&self, key: &(u64, StateBitmap)) -> &Shard {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        // Length is a power of two, so the mask picks a uniform shard.
        &self.shards[(hasher.finish() as usize) & (self.shards.len() - 1)]
    }

    fn lookup(&self, namespace: u64, bitmap: &StateBitmap) -> Option<SharedEvaluation> {
        let key = (namespace, bitmap.clone());
        let shard = self.shard_for(&key);
        let found = shard
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn record(&self, namespace: u64, bitmap: &StateBitmap, evaluation: &SharedEvaluation) {
        let key = (namespace, bitmap.clone());
        let shard = self.shard_for(&key);
        let previous = shard
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, evaluation.clone());
        if previous.is_none() {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A namespaced view of a [`SharedEvalCache`]; implements
/// [`EvaluationHook`] so it can be installed on a `ValuationContext`.
pub struct CacheHandle {
    cache: Arc<SharedEvalCache>,
    namespace: u64,
}

impl EvaluationHook for CacheHandle {
    fn lookup(&self, bitmap: &StateBitmap) -> Option<SharedEvaluation> {
        self.cache.lookup(self.namespace, bitmap)
    }

    fn record(&self, bitmap: &StateBitmap, evaluation: &SharedEvaluation) {
        self.cache.record(self.namespace, bitmap, evaluation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(v: f64) -> SharedEvaluation {
        SharedEvaluation {
            raw: vec![v],
            perf: vec![v],
        }
    }

    #[test]
    fn records_and_hits_within_a_namespace() {
        let cache = Arc::new(SharedEvalCache::new(8));
        let handle = cache.handle("t1");
        let b = StateBitmap::full(5);
        assert!(handle.lookup(&b).is_none());
        handle.record(&b, &eval(0.25));
        assert_eq!(handle.lookup(&b), Some(eval(0.25)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn namespaces_are_isolated() {
        let cache = Arc::new(SharedEvalCache::new(4));
        let a = cache.handle("task-a");
        let b = cache.handle("task-b");
        let bitmap = StateBitmap::full(3);
        a.record(&bitmap, &eval(1.0));
        assert!(b.lookup(&bitmap).is_none());
        assert_eq!(a.lookup(&bitmap), Some(eval(1.0)));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn handles_share_one_store() {
        let cache = Arc::new(SharedEvalCache::new(2));
        let h1 = cache.handle("shared");
        let h2 = cache.handle("shared");
        let bitmap = StateBitmap::empty(4);
        h1.record(&bitmap, &eval(0.5));
        assert_eq!(h2.lookup(&bitmap), Some(eval(0.5)));
    }

    #[test]
    fn overwrite_does_not_double_count_entries() {
        let cache = Arc::new(SharedEvalCache::new(1));
        let h = cache.handle("n");
        let bitmap = StateBitmap::full(2);
        h.record(&bitmap, &eval(0.1));
        h.record(&bitmap, &eval(0.2));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(h.lookup(&bitmap), Some(eval(0.2)));
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(SharedEvalCache::new(16));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let handle = cache.handle("stress");
                scope.spawn(move || {
                    for i in 0..50 {
                        let mut bitmap = StateBitmap::empty(16);
                        bitmap.set(i % 16, true);
                        handle.record(&bitmap, &eval((t * 50 + i) as f64));
                        assert!(handle.lookup(&bitmap).is_some());
                    }
                });
            }
        });
        // 16 distinct states across all threads.
        assert_eq!(cache.stats().entries, 16);
    }
}
